// Package dataframe implements a small columnar table engine: typed columns
// with null bitmaps, filtering, sorting, group-by aggregation and left joins.
// It is the relational substrate FeatAug executes predicate-aware queries on,
// playing the role pandas plays in the original paper.
package dataframe

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind identifies the physical type of a Column.
type Kind int

// Supported column kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindString
	KindTime
	KindBool
)

// String returns the lower-case kind name ("int", "float", ...).
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsNumeric reports whether the kind holds ordered numeric data.
// Time counts as numeric because range predicates apply to it.
func (k Kind) IsNumeric() bool {
	return k == KindInt || k == KindFloat || k == KindTime
}

// Column is a typed vector of values with a validity (non-null) bitmap.
// The zero value is an empty int column named "".
type Column struct {
	name   string
	kind   Kind
	ints   []int64   // KindInt and KindTime (unix seconds)
	floats []float64 // KindFloat
	strs   []string  // KindString; nil in compact mode
	bools  []bool    // KindBool
	valid  []bool    // valid[i] == false means NULL
	// dict lazily caches the dictionary encoding of a string column (see
	// dict.go). A plain pointer, not a lock, so by-value copies (Rename)
	// stay vet-clean and share the encoding.
	dict *dictLazy
	// compact marks a string column whose dictionary codes are the PRIMARY
	// storage: strs is nil and every per-row read decodes domain[code] lazily
	// (see strAt). Invariant while compact: dict.built && dict.enc != nil.
	// Appends that would invalidate the encoding (mid-domain value, cap
	// crossing) rematerialise strs first and drop the flag, preserving the
	// PR 9 fallback semantics exactly.
	compact bool
}

// NewIntColumn builds an int column. A nil valid slice means all values are
// present.
func NewIntColumn(name string, values []int64, valid []bool) *Column {
	return &Column{name: name, kind: KindInt, ints: values, valid: normValid(valid, len(values))}
}

// NewFloatColumn builds a float column. NaN values are marked null.
func NewFloatColumn(name string, values []float64, valid []bool) *Column {
	v := normValid(valid, len(values))
	for i, x := range values {
		if math.IsNaN(x) {
			v[i] = false
		}
	}
	return &Column{name: name, kind: KindFloat, floats: values, valid: v}
}

// NewStringColumn builds a string column.
func NewStringColumn(name string, values []string, valid []bool) *Column {
	return &Column{name: name, kind: KindString, strs: values, valid: normValid(valid, len(values)), dict: &dictLazy{}}
}

// NewTimeColumn builds a time column from unix-seconds timestamps.
func NewTimeColumn(name string, unixSecs []int64, valid []bool) *Column {
	return &Column{name: name, kind: KindTime, ints: unixSecs, valid: normValid(valid, len(unixSecs))}
}

// NewBoolColumn builds a bool column.
func NewBoolColumn(name string, values []bool, valid []bool) *Column {
	return &Column{name: name, kind: KindBool, bools: values, valid: normValid(valid, len(values))}
}

func normValid(valid []bool, n int) []bool {
	if valid == nil {
		valid = make([]bool, n)
		for i := range valid {
			valid[i] = true
		}
		return valid
	}
	if len(valid) != n {
		panic(fmt.Sprintf("dataframe: valid length %d != values length %d", len(valid), n))
	}
	out := make([]bool, n)
	copy(out, valid)
	return out
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the physical type of the column.
func (c *Column) Kind() Kind { return c.kind }

// Len returns the number of rows.
func (c *Column) Len() int { return len(c.valid) }

// Rename returns a copy of the column metadata under a new name, sharing the
// underlying data.
func (c *Column) Rename(name string) *Column {
	cp := *c
	cp.name = name
	return &cp
}

// IsNull reports whether the value at row i is NULL.
func (c *Column) IsNull(i int) bool { return !c.valid[i] }

// NullCount returns the number of NULL entries.
func (c *Column) NullCount() int {
	n := 0
	for _, v := range c.valid {
		if !v {
			n++
		}
	}
	return n
}

// Int returns the int64 value at row i. Valid for KindInt and KindTime.
func (c *Column) Int(i int) int64 {
	if c.kind != KindInt && c.kind != KindTime {
		panic("dataframe: Int on " + c.kind.String() + " column " + c.name)
	}
	return c.ints[i]
}

// Float returns the float64 value at row i. Valid for KindFloat.
func (c *Column) Float(i int) float64 {
	if c.kind != KindFloat {
		panic("dataframe: Float on " + c.kind.String() + " column " + c.name)
	}
	return c.floats[i]
}

// Str returns the string value at row i. Valid for KindString. On a compact
// column the value is decoded from the dictionary domain ("" at NULL rows,
// matching the raw representation's placeholder).
func (c *Column) Str(i int) string {
	if c.kind != KindString {
		panic("dataframe: Str on " + c.kind.String() + " column " + c.name)
	}
	return c.strAt(i)
}

// strAt is the kind-unchecked per-row string read: raw columns index strs,
// compact columns decode domain[code].
func (c *Column) strAt(i int) string {
	if !c.compact {
		return c.strs[i]
	}
	if !c.valid[i] {
		return ""
	}
	enc := c.dict.enc
	return enc.values[enc.codes[i]]
}

// Bool returns the bool value at row i. Valid for KindBool.
func (c *Column) Bool(i int) bool {
	if c.kind != KindBool {
		panic("dataframe: Bool on " + c.kind.String() + " column " + c.name)
	}
	return c.bools[i]
}

// Time returns the time value at row i. Valid for KindTime.
func (c *Column) Time(i int) time.Time {
	if c.kind != KindTime {
		panic("dataframe: Time on " + c.kind.String() + " column " + c.name)
	}
	return time.Unix(c.ints[i], 0).UTC()
}

// AsFloat returns the value at row i coerced to float64, and whether it is
// non-null. Strings and bools convert as: bool → 0/1, string → NaN/false.
func (c *Column) AsFloat(i int) (float64, bool) {
	if !c.valid[i] {
		return 0, false
	}
	switch c.kind {
	case KindInt, KindTime:
		return float64(c.ints[i]), true
	case KindFloat:
		return c.floats[i], true
	case KindBool:
		if c.bools[i] {
			return 1, true
		}
		return 0, true
	default:
		return math.NaN(), false
	}
}

// Value returns the value at row i as an interface, or nil when NULL.
func (c *Column) Value(i int) interface{} {
	if !c.valid[i] {
		return nil
	}
	switch c.kind {
	case KindInt:
		return c.ints[i]
	case KindFloat:
		return c.floats[i]
	case KindString:
		return c.strAt(i)
	case KindTime:
		return time.Unix(c.ints[i], 0).UTC()
	case KindBool:
		return c.bools[i]
	}
	return nil
}

// KeyString returns a canonical string for group-by / join hashing, with a
// sentinel for NULL.
func (c *Column) KeyString(i int) string {
	return string(c.AppendKey(nil, i))
}

// AppendKey appends the canonical key form of row i to b — KeyString without
// the per-call allocation, for hot grouping and join loops.
func (c *Column) AppendKey(b []byte, i int) []byte {
	if !c.valid[i] {
		return append(b, "\x00NULL"...)
	}
	switch c.kind {
	case KindInt, KindTime:
		b = append(b, 'i')
		return strconv.AppendInt(b, c.ints[i], 10)
	case KindFloat:
		b = append(b, 'f')
		return strconv.AppendFloat(b, c.floats[i], 'g', -1, 64)
	case KindString:
		b = append(b, 's')
		return append(b, c.strAt(i)...)
	case KindBool:
		if c.bools[i] {
			return append(b, "b1"...)
		}
		return append(b, "b0"...)
	}
	return b
}

// Bulk accessors expose the column's backing slices without copying, for hot
// loops (the fused query executor's shared scans) that would otherwise pay a
// kind switch and bounds checks per row through AsFloat/IsNull. The returned
// slices are the live backing store: callers must treat them as read-only and
// must check Kind first — a slice that does not back the column's kind is nil.

// IntData returns the backing int64 slice of a KindInt or KindTime column.
func (c *Column) IntData() []int64 { return c.ints }

// FloatData returns the backing float64 slice of a KindFloat column.
func (c *Column) FloatData() []float64 { return c.floats }

// StrData returns the backing string slice of a KindString column, or nil on
// a compact column (no []string backing exists; read through Str/Dict codes).
func (c *Column) StrData() []string { return c.strs }

// BoolData returns the backing bool slice of a KindBool column.
func (c *Column) BoolData() []bool { return c.bools }

// ValidData returns the backing validity slice: valid[i] == false means NULL.
// Present for every kind.
func (c *Column) ValidData() []bool { return c.valid }

// Take returns a new column containing the rows listed in idx, in order.
func (c *Column) Take(idx []int) *Column {
	out := &Column{name: c.name, kind: c.kind, valid: make([]bool, len(idx))}
	switch c.kind {
	case KindInt, KindTime:
		out.ints = make([]int64, len(idx))
		for j, i := range idx {
			out.ints[j] = c.ints[i]
			out.valid[j] = c.valid[i]
		}
	case KindFloat:
		out.floats = make([]float64, len(idx))
		for j, i := range idx {
			out.floats[j] = c.floats[i]
			out.valid[j] = c.valid[i]
		}
	case KindString:
		if c.compact {
			// Stay compact: take the codes, rebuild validity, share the
			// domain (full-slice expression so a later in-place domain
			// extension on either column reallocates instead of clobbering
			// the sibling). The inherited domain may list values absent from
			// the taken rows; presence-scanning consumers handle that.
			src := c.dict.enc
			nv := len(src.values)
			enc := &DictEncoding{
				values:    src.values[:nv:nv],
				codes:     make([]uint32, len(idx)),
				validBits: make([]uint64, (len(idx)+63)/64),
			}
			for j, i := range idx {
				if c.valid[i] {
					out.valid[j] = true
					enc.codes[j] = src.codes[i]
					enc.validBits[j>>6] |= 1 << uint(j&63)
				} else {
					enc.nulls++
				}
			}
			enc.rebuildMirrors()
			out.dict = newBuiltDict(enc)
			out.compact = true
			break
		}
		out.strs = make([]string, len(idx))
		for j, i := range idx {
			out.strs[j] = c.strs[i]
			out.valid[j] = c.valid[i]
		}
		out.dict = &dictLazy{}
	case KindBool:
		out.bools = make([]bool, len(idx))
		for j, i := range idx {
			out.bools[j] = c.bools[i]
			out.valid[j] = c.valid[i]
		}
	}
	return out
}

// Floats materialises the column as a float64 slice plus a validity slice,
// coercing ints, times and bools. String columns yield ordinal codes over the
// sorted distinct domain so that downstream numeric consumers (ML models,
// MI estimators) can handle them.
func (c *Column) Floats() ([]float64, []bool) {
	out := make([]float64, c.Len())
	valid := make([]bool, c.Len())
	if c.kind == KindString {
		codes := c.ordinalCodes()
		for i := range out {
			out[i] = float64(codes[i])
			valid[i] = c.valid[i]
		}
		return out, valid
	}
	for i := range out {
		out[i], valid[i] = c.AsFloat(i)
	}
	return out, valid
}

// ordinalCodes maps each string value to its rank in the sorted distinct
// domain. NULLs get code -1.
func (c *Column) ordinalCodes() []int {
	if c.compact {
		// The dictionary domain is already sorted; rank only the values
		// present among the column's rows (an inherited domain may list
		// absent values) so the result matches the raw-column scan exactly.
		enc := c.dict.enc
		rank := presenceRanks(enc, c.valid)
		codes := make([]int, len(enc.codes))
		for i := range codes {
			if !c.valid[i] {
				codes[i] = -1
				continue
			}
			codes[i] = rank[enc.codes[i]]
		}
		return codes
	}
	domain := map[string]int{}
	var keys []string
	for i, s := range c.strs {
		if !c.valid[i] {
			continue
		}
		if _, ok := domain[s]; !ok {
			domain[s] = 0
			keys = append(keys, s)
		}
	}
	sortStrings(keys)
	for rank, k := range keys {
		domain[k] = rank
	}
	codes := make([]int, len(c.strs))
	for i, s := range c.strs {
		if !c.valid[i] {
			codes[i] = -1
			continue
		}
		codes[i] = domain[s]
	}
	return codes
}

// presenceRanks scans a column's codes once and assigns each PRESENT domain
// code its rank among the present codes (domain order == sorted order), -1
// for absent codes.
func presenceRanks(enc *DictEncoding, valid []bool) []int {
	rank := make([]int, len(enc.values))
	for i := range rank {
		rank[i] = -1
	}
	for i, code := range enc.codes {
		if valid[i] {
			rank[code] = 0
		}
	}
	r := 0
	for i, v := range rank {
		if v == 0 {
			rank[i] = r
			r++
		}
	}
	return rank
}

func sortStrings(s []string) {
	// Insertion sort is fine for domains; avoid importing sort here to keep
	// this file dependency-free, and domains are small in practice.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// AppendNull extends the column with one NULL row.
func (c *Column) AppendNull() {
	if c.kind == KindString {
		c.extendDictNull()
	}
	c.valid = append(c.valid, false)
	switch c.kind {
	case KindInt, KindTime:
		c.ints = append(c.ints, 0)
	case KindFloat:
		c.floats = append(c.floats, 0)
	case KindString:
		if !c.compact { // compact: the NULL lives in the code/validity arrays
			c.strs = append(c.strs, "")
		}
	case KindBool:
		c.bools = append(c.bools, false)
	}
}

// AppendInt extends an int or time column with a value.
func (c *Column) AppendInt(v int64) {
	if c.kind != KindInt && c.kind != KindTime {
		panic("dataframe: AppendInt on " + c.kind.String())
	}
	c.ints = append(c.ints, v)
	c.valid = append(c.valid, true)
}

// AppendFloat extends a float column with a value.
func (c *Column) AppendFloat(v float64) {
	if c.kind != KindFloat {
		panic("dataframe: AppendFloat on " + c.kind.String())
	}
	c.floats = append(c.floats, v)
	c.valid = append(c.valid, !math.IsNaN(v))
}

// AppendStr extends a string column with a value.
func (c *Column) AppendStr(v string) {
	if c.kind != KindString {
		panic("dataframe: AppendStr on " + c.kind.String())
	}
	c.extendDictStr(v) // may rematerialise a compact column (fallback cases)
	if !c.compact {
		c.strs = append(c.strs, v)
	}
	c.valid = append(c.valid, true)
}

// AppendBool extends a bool column with a value.
func (c *Column) AppendBool(v bool) {
	if c.kind != KindBool {
		panic("dataframe: AppendBool on " + c.kind.String())
	}
	c.bools = append(c.bools, v)
	c.valid = append(c.valid, true)
}

// appendFrom bulk-appends every row of o (same kind, checked by the caller)
// — the column half of Table.AppendRows. Existing rows keep their positions
// and values; string columns extend a built dictionary in place when the
// delta keeps existing codes stable (see extendDictBulk).
func (c *Column) appendFrom(o *Column) {
	switch c.kind {
	case KindInt, KindTime:
		c.ints = append(c.ints, o.ints...)
	case KindFloat:
		c.floats = append(c.floats, o.floats...)
	case KindString:
		vals := o.materializedStrs() // o may itself be compact
		c.extendDictBulk(vals, o.valid)
		if !c.compact { // extendDictBulk rematerialises on fallback
			c.strs = append(c.strs, vals...)
		}
	case KindBool:
		c.bools = append(c.bools, o.bools...)
	}
	c.valid = append(c.valid, o.valid...)
}

// Clone deep-copies the column. A compact column clones compact: the code
// arrays are copied, the (immutable) domain is shared with append-safe
// capacity.
func (c *Column) Clone() *Column {
	out := &Column{name: c.name, kind: c.kind}
	if c.kind == KindString {
		if c.compact {
			out.dict = newBuiltDict(c.dict.enc.clone())
			out.compact = true
		} else {
			out.dict = &dictLazy{}
		}
	}
	out.valid = append([]bool(nil), c.valid...)
	out.ints = append([]int64(nil), c.ints...)
	out.floats = append([]float64(nil), c.floats...)
	out.strs = append([]string(nil), c.strs...)
	out.bools = append([]bool(nil), c.bools...)
	return out
}

// DistinctStrings returns the sorted distinct non-null values of a string
// column, capped at limit (0 = no cap). When a dictionary encoding exists the
// probe is served from it — a presence scan over the codes instead of a
// hashed scan over raw strings (the domain is already sorted; the scan drops
// inherited-domain values absent from the column's rows).
func (c *Column) DistinctStrings(limit int) []string {
	if c.kind != KindString {
		panic("dataframe: DistinctStrings on " + c.kind.String())
	}
	if enc := c.Dict(); enc != nil {
		present := make([]bool, len(enc.values))
		for i, code := range enc.codes {
			if c.valid[i] {
				present[code] = true
			}
		}
		var out []string
		for code, p := range present {
			if !p {
				continue
			}
			out = append(out, enc.values[code])
			if limit > 0 && len(out) == limit {
				break
			}
		}
		return out
	}
	seen := map[string]bool{}
	var out []string
	for i, s := range c.strs {
		if !c.valid[i] || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	sortStrings(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// MinMaxFloat returns the minimum and maximum non-null values of a numeric
// column, and false when the column has no non-null values.
func (c *Column) MinMaxFloat() (lo, hi float64, ok bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < c.Len(); i++ {
		v, valid := c.AsFloat(i)
		if !valid {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		ok = true
	}
	return lo, hi, ok
}
