package dataframe

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSVAllKinds(t *testing.T) {
	in := "id,x,name,ok,ts,extra\n" +
		"1,1.5,alice,true,2023-07-01T00:00:00Z,ignored\n" +
		"2,,bob,false,1688169600,ignored\n"
	tbl, err := ReadCSV(strings.NewReader(in), []ColumnSpec{
		{"id", KindInt}, {"x", KindFloat}, {"name", KindString},
		{"ok", KindBool}, {"ts", KindTime},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 || tbl.NumCols() != 5 {
		t.Fatalf("shape %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Column("id").Int(1) != 2 {
		t.Fatal("int parse")
	}
	if !tbl.Column("x").IsNull(1) {
		t.Fatal("empty cell should be NULL")
	}
	if tbl.Column("ts").Int(0) != tbl.Column("ts").Int(1) {
		t.Fatal("RFC3339 and unix forms of same instant should match")
	}
	if tbl.Column("ok").Bool(1) {
		t.Fatal("bool parse")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), nil); err == nil {
		t.Fatal("empty input should fail on header")
	}
	if _, err := ReadCSV(strings.NewReader("a\n1\n"), []ColumnSpec{{"b", KindInt}}); err == nil {
		t.Fatal("missing column should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a\nxx\n"), []ColumnSpec{{"a", KindInt}}); err == nil {
		t.Fatal("bad int should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a\nxx\n"), []ColumnSpec{{"a", KindFloat}}); err == nil {
		t.Fatal("bad float should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a\nxx\n"), []ColumnSpec{{"a", KindBool}}); err == nil {
		t.Fatal("bad bool should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a\nnot-a-time\n"), []ColumnSpec{{"a", KindTime}}); err == nil {
		t.Fatal("bad time should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := MustNewTable(
		NewIntColumn("id", []int64{1, 2}, nil),
		NewFloatColumn("x", []float64{1.25, 0}, []bool{true, false}),
		NewStringColumn("s", []string{"a", "b"}, nil),
		NewBoolColumn("b", []bool{true, false}, nil),
		NewTimeColumn("ts", []int64{1688169600, 0}, []bool{true, true}),
	)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, []ColumnSpec{
		{"id", KindInt}, {"x", KindFloat}, {"s", KindString},
		{"b", KindBool}, {"ts", KindTime},
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 {
		t.Fatalf("rows = %d", back.NumRows())
	}
	if back.Column("x").Float(0) != 1.25 || !back.Column("x").IsNull(1) {
		t.Fatal("float round trip")
	}
	if back.Column("ts").Int(0) != 1688169600 {
		t.Fatal("time round trip")
	}
}
