package dataframe

import (
	"math/rand"
	"testing"
)

// refGroupIndex is the generic string-keyed grouping algorithm, kept inline
// as the reference the single-int-key fast path must match exactly.
func refGroupIndex(t *testing.T, tbl *Table, keys ...string) (rowGID []int, keyStrs []string, repr, sizes []int) {
	t.Helper()
	cols := make([]*Column, len(keys))
	for i, k := range keys {
		cols[i] = tbl.Column(k)
		if cols[i] == nil {
			t.Fatalf("no column %q", k)
		}
	}
	ids := map[string]int{}
	rowGID = make([]int, tbl.NumRows())
	for i := 0; i < tbl.NumRows(); i++ {
		k := tbl.RowKey(i, cols)
		gid, ok := ids[k]
		if !ok {
			gid = len(keyStrs)
			ids[k] = gid
			keyStrs = append(keyStrs, k)
			repr = append(repr, i)
			sizes = append(sizes, 0)
		}
		rowGID[i] = gid
		sizes[gid]++
	}
	return rowGID, keyStrs, repr, sizes
}

// TestBuildGroupIndexIntFastPath checks the map[int64]int fast path for
// single integer and time keys — including NULL keys, which must form their
// own group — against the generic composite-string reference, for group ids,
// key strings, representatives and sizes alike.
func TestBuildGroupIndexIntFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 400
	vals := make([]int64, n)
	valid := make([]bool, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(25)) - 12 // negatives exercise key encoding
		valid[i] = rng.Float64() > 0.1
	}
	for _, kind := range []string{"int", "time"} {
		var col *Column
		if kind == "int" {
			col = NewIntColumn("k", vals, valid)
		} else {
			col = NewTimeColumn("k", vals, valid)
		}
		tbl := MustNewTable(col)
		g, err := tbl.BuildGroupIndex("k")
		if err != nil {
			t.Fatal(err)
		}
		rowGID, keyStrs, repr, sizes := refGroupIndex(t, tbl, "k")
		if g.NumGroups() != len(keyStrs) {
			t.Fatalf("%s: %d groups, want %d", kind, g.NumGroups(), len(keyStrs))
		}
		for i := 0; i < n; i++ {
			if g.GroupOf(i) != rowGID[i] {
				t.Fatalf("%s: row %d gid %d, want %d", kind, i, g.GroupOf(i), rowGID[i])
			}
		}
		for gid := 0; gid < g.NumGroups(); gid++ {
			if g.Key(gid) != keyStrs[gid] {
				t.Fatalf("%s: group %d key %q, want %q", kind, gid, g.Key(gid), keyStrs[gid])
			}
			if g.Repr(gid) != repr[gid] {
				t.Fatalf("%s: group %d repr %d, want %d", kind, gid, g.Repr(gid), repr[gid])
			}
			if g.Size(gid) != sizes[gid] {
				t.Fatalf("%s: group %d size %d, want %d", kind, gid, g.Size(gid), sizes[gid])
			}
		}
	}
}

// TestBuildGroupIndexFastPathJoinCompatible ensures the fast path's key
// strings still line up with a generic-path index over equivalent string
// spellings — the property the executor's join mapping relies on when both
// sides group on the same key-set.
func TestBuildGroupIndexFastPathJoinCompatible(t *testing.T) {
	left := MustNewTable(NewIntColumn("k", []int64{3, 1, 3, 7}, nil))
	right := MustNewTable(NewIntColumn("k", []int64{7, 3}, nil))
	gl, err := left.BuildGroupIndex("k")
	if err != nil {
		t.Fatal(err)
	}
	gr, err := right.BuildGroupIndex("k")
	if err != nil {
		t.Fatal(err)
	}
	lookup := map[string]int{}
	for gid := 0; gid < gr.NumGroups(); gid++ {
		lookup[gr.Key(gid)] = gid
	}
	wants := map[int64]bool{3: true, 7: true, 1: false}
	for gid := 0; gid < gl.NumGroups(); gid++ {
		v := left.Column("k").Int(gl.Repr(gid))
		if _, ok := lookup[gl.Key(gid)]; ok != wants[v] {
			t.Fatalf("key %d: join match %v, want %v", v, ok, wants[v])
		}
	}
}
