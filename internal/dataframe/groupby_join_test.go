package dataframe

import (
	"math"
	"testing"
)

func logsTable(t *testing.T) *Table {
	t.Helper()
	return MustNewTable(
		NewStringColumn("cname", []string{"alice", "bob", "alice", "bob", "alice"}, nil),
		NewFloatColumn("pprice", []float64{10, 20, 30, math.NaN(), 50}, nil),
		NewStringColumn("dept", []string{"elec", "food", "elec", "elec", "food"}, nil),
	)
}

func TestGroupByCountsAndOrder(t *testing.T) {
	logs := logsTable(t)
	g, err := logs.GroupBy("cname")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d", g.NumGroups())
	}
	var order []string
	g.Each(func(key string, rows []int) { order = append(order, key) })
	if order[0] != "salice" || order[1] != "sbob" {
		t.Fatalf("first-seen order = %v", order)
	}
	if len(g.Rows("salice")) != 3 || len(g.Rows("sbob")) != 2 {
		t.Fatal("group sizes wrong")
	}
	if g.Rows("ghost") != nil {
		t.Fatal("missing key should give nil")
	}
}

func TestGroupByUnknownColumn(t *testing.T) {
	if _, err := logsTable(t).GroupBy("ghost"); err == nil {
		t.Fatal("unknown key should fail")
	}
}

func TestGroupByNullKeysFormOwnGroup(t *testing.T) {
	tbl := MustNewTable(
		NewStringColumn("k", []string{"a", "", "a"}, []bool{true, false, true}),
		NewFloatColumn("v", []float64{1, 2, 3}, nil),
	)
	g, err := tbl.GroupBy("k")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d, want 2 (value group + NULL group)", g.NumGroups())
	}
}

func TestAggregateSumAndCount(t *testing.T) {
	logs := logsTable(t)
	g, _ := logs.GroupBy("cname")
	sum := func(v []float64, n int) (float64, bool) {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s, len(v) > 0
	}
	count := func(v []float64, n int) (float64, bool) { return float64(n), true }
	out, err := g.Aggregate(
		AggSpec{Col: "pprice", As: "total", Fn: sum},
		AggSpec{Col: "pprice", As: "cnt", Fn: count},
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	// alice: 10+30+50 = 90; bob: 20 (NaN excluded from sum but counted in n)
	if out.Column("total").Float(0) != 90 || out.Column("total").Float(1) != 20 {
		t.Fatalf("totals = %v %v", out.Column("total").Float(0), out.Column("total").Float(1))
	}
	if out.Column("cnt").Float(1) != 2 {
		t.Fatal("COUNT should include null rows via n")
	}
	if out.Column("cname").Str(0) != "alice" {
		t.Fatal("key column missing from output")
	}
}

func TestAggregateDefaultsNameAndErrors(t *testing.T) {
	logs := logsTable(t)
	g, _ := logs.GroupBy("cname")
	out, err := g.Aggregate(AggSpec{Col: "pprice", Fn: func(v []float64, n int) (float64, bool) { return 0, true }})
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasColumn("pprice_agg") {
		t.Fatal("default output name missing")
	}
	if _, err := g.Aggregate(AggSpec{Col: "ghost", Fn: nil}); err == nil {
		t.Fatal("unknown agg column should fail")
	}
}

func TestAggregateStringsMode(t *testing.T) {
	logs := logsTable(t)
	g, _ := logs.GroupBy("cname")
	out, err := g.AggregateStrings("dept", "mode_code", func(vals []string) (float64, bool) {
		if len(vals) == 0 {
			return 0, false
		}
		counts := map[string]int{}
		for _, v := range vals {
			counts[v]++
		}
		best, bestN := "", -1
		for v, n := range counts {
			if n > bestN || (n == bestN && v < best) {
				best, bestN = v, n
			}
		}
		return float64(len(best)), true // arbitrary numeric image for the test
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Column("mode_code").Float(0) != 4 { // alice mode "elec"
		t.Fatalf("mode = %v", out.Column("mode_code").Float(0))
	}
	if _, err := g.AggregateStrings("pprice", "x", nil); err == nil {
		t.Fatal("AggregateStrings on float column should fail")
	}
	if _, err := g.AggregateStrings("ghost", "x", nil); err == nil {
		t.Fatal("AggregateStrings on missing column should fail")
	}
}

func TestLeftJoinBasic(t *testing.T) {
	users := MustNewTable(
		NewStringColumn("cname", []string{"alice", "bob", "carol"}, nil),
		NewIntColumn("age", []int64{30, 40, 50}, nil),
	)
	feats := MustNewTable(
		NewStringColumn("cname", []string{"bob", "alice"}, nil),
		NewFloatColumn("feat", []float64{2, 1}, nil),
	)
	out, err := users.LeftJoin(feats, []string{"cname"}, []string{"cname"})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	f := out.Column("feat")
	if f.Float(0) != 1 || f.Float(1) != 2 || !f.IsNull(2) {
		t.Fatalf("feat = %v %v null=%v", f.Float(0), f.Float(1), f.IsNull(2))
	}
	// left columns preserved
	if out.Column("age").Int(2) != 50 {
		t.Fatal("left column lost")
	}
}

func TestLeftJoinNameCollisionGetsSuffix(t *testing.T) {
	left := MustNewTable(
		NewStringColumn("k", []string{"a"}, nil),
		NewFloatColumn("v", []float64{1}, nil),
	)
	right := MustNewTable(
		NewStringColumn("k", []string{"a"}, nil),
		NewFloatColumn("v", []float64{2}, nil),
	)
	out, err := left.LeftJoin(right, []string{"k"}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasColumn("v_r") || out.Column("v_r").Float(0) != 2 {
		t.Fatal("collision suffix missing")
	}
}

func TestLeftJoinValidation(t *testing.T) {
	tbl := logsTable(t)
	if _, err := tbl.LeftJoin(tbl, nil, nil); err == nil {
		t.Fatal("empty keys should fail")
	}
	if _, err := tbl.LeftJoin(tbl, []string{"cname"}, []string{"cname", "dept"}); err == nil {
		t.Fatal("unequal key lists should fail")
	}
	if _, err := tbl.LeftJoin(tbl, []string{"ghost"}, []string{"cname"}); err == nil {
		t.Fatal("unknown left key should fail")
	}
	if _, err := tbl.LeftJoin(tbl, []string{"cname"}, []string{"ghost"}); err == nil {
		t.Fatal("unknown right key should fail")
	}
}

func TestLeftJoinUsesFirstRightMatch(t *testing.T) {
	left := MustNewTable(NewStringColumn("k", []string{"a"}, nil))
	right := MustNewTable(
		NewStringColumn("k", []string{"a", "a"}, nil),
		NewFloatColumn("v", []float64{10, 20}, nil),
	)
	out, err := left.LeftJoin(right, []string{"k"}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Column("v").Float(0) != 10 {
		t.Fatal("should keep exactly the first right match")
	}
}

func TestInnerJoinDropsMisses(t *testing.T) {
	left := MustNewTable(
		NewStringColumn("k", []string{"a", "b"}, nil),
	)
	right := MustNewTable(
		NewStringColumn("k", []string{"a"}, nil),
		NewFloatColumn("v", []float64{1}, nil),
	)
	out, err := left.InnerJoin(right, []string{"k"}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Column("k").Str(0) != "a" {
		t.Fatalf("inner join rows = %d", out.NumRows())
	}
	if _, err := left.InnerJoin(right, []string{"ghost"}, []string{"k"}); err == nil {
		t.Fatal("unknown key should fail")
	}
}

func TestCompositeKeyJoin(t *testing.T) {
	left := MustNewTable(
		NewIntColumn("u", []int64{1, 1, 2}, nil),
		NewIntColumn("m", []int64{10, 20, 10}, nil),
	)
	right := MustNewTable(
		NewIntColumn("u", []int64{1, 2}, nil),
		NewIntColumn("m", []int64{20, 10}, nil),
		NewFloatColumn("v", []float64{5, 7}, nil),
	)
	out, err := left.LeftJoin(right, []string{"u", "m"}, []string{"u", "m"})
	if err != nil {
		t.Fatal(err)
	}
	v := out.Column("v")
	if !v.IsNull(0) || v.Float(1) != 5 || v.Float(2) != 7 {
		t.Fatal("composite key join wrong")
	}
}
