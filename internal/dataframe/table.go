package dataframe

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Table is an ordered collection of equally sized columns.
type Table struct {
	cols  []*Column
	index map[string]int
	nrows int
	fp    atomic.Uint64 // lazily assigned identity fingerprint; 0 = unassigned

	// Epoch state (AppendRows): epoch counts completed append batches and
	// epochRows[e] is the row count as of epoch e (nil until the first
	// append, meaning epoch 0 with the current row count).
	epoch     atomic.Uint64
	epochRows []int

	// Shard provenance (set by Shard, nil otherwise): the parent table this
	// table's rows were taken from, and the parent row index behind each row.
	parent     *Table
	parentRows []int
}

// NewTable builds a table from columns, which must share a length and have
// distinct names.
func NewTable(cols ...*Column) (*Table, error) {
	t := &Table{index: map[string]int{}}
	for _, c := range cols {
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustNewTable is NewTable but panics on error; intended for tests and
// generators with statically correct shapes.
func MustNewTable(cols ...*Column) *Table {
	t, err := NewTable(cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.nrows }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// Columns returns the column list in declaration order. The slice is shared;
// callers must not mutate it.
func (t *Table) Columns() []*Column { return t.cols }

// ColumnNames returns the names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.name
	}
	return names
}

// Column returns the named column or nil.
func (t *Table) Column(name string) *Column {
	if i, ok := t.index[name]; ok {
		return t.cols[i]
	}
	return nil
}

// HasColumn reports whether a column with the given name exists.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.index[name]
	return ok
}

// AddColumn appends a column. It fails on duplicate names or row-count
// mismatches (except when the table is empty).
func (t *Table) AddColumn(c *Column) error {
	if _, ok := t.index[c.name]; ok {
		return fmt.Errorf("dataframe: duplicate column %q", c.name)
	}
	if len(t.cols) > 0 && c.Len() != t.nrows {
		return fmt.Errorf("dataframe: column %q has %d rows, table has %d", c.name, c.Len(), t.nrows)
	}
	if len(t.cols) == 0 {
		t.nrows = c.Len()
	}
	t.index[c.name] = len(t.cols)
	t.cols = append(t.cols, c)
	return nil
}

// fingerprints hands out process-unique table identity tokens.
var fingerprints atomic.Uint64

// Fingerprint returns a process-unique identity token for the table, assigned
// lazily on first call and stable for the table's lifetime. Two distinct
// Table values never share a fingerprint, and derived tables (Take, Clone,
// ...) get identities of their own, so the token is safe to use as the key of
// cross-executor caches over table-derived artefacts (the train-side join
// index cache keys on it). Tables used that way must not be mutated after the
// first keyed use — the same contract executors already impose.
func (t *Table) Fingerprint() uint64 {
	if v := t.fp.Load(); v != 0 {
		return v
	}
	next := fingerprints.Add(1)
	if t.fp.CompareAndSwap(0, next) {
		return next
	}
	return t.fp.Load()
}

// Epoch returns the table's append epoch: 0 at construction, +1 per
// AppendRows batch. Fingerprint stays the cache identity of the table;
// Epoch versions its grow-only content, so a cache entry keyed on the
// fingerprint can tell how many rows it has already absorbed via
// RowsAtEpoch and advance over just the delta. Safe for concurrent use.
func (t *Table) Epoch() uint64 { return t.epoch.Load() }

// RowsAtEpoch returns the table's row count as of epoch e. It panics when e
// exceeds the current epoch.
func (t *Table) RowsAtEpoch(e uint64) int {
	if t.epochRows == nil {
		if e != 0 {
			panic(fmt.Sprintf("dataframe: epoch %d beyond table epoch 0", e))
		}
		return t.nrows
	}
	return t.epochRows[e]
}

// AppendRows appends every row of batch to the table and bumps the epoch.
// The batch must carry exactly the table's columns by name and kind (any
// order); extra or missing columns fail without mutating the table. Existing
// rows keep their positions and values — columns grow by a stable prefix —
// so caches built at an earlier epoch remain valid over rows
// [0, RowsAtEpoch(thatEpoch)) and only need to scan the appended suffix.
//
// Appends are mutations: the caller must hold exclusive access to the table
// (no scans in flight), the same contract as the per-value Append* methods.
// Query-layer consumers go through their scheduler's epoch fence instead of
// calling this directly. Tables with shard provenance reject AppendRows
// (use AppendShardRows so parent row indices stay recorded), and tables
// sharing columns with a larger table (SelectColumns views) must not be
// appended through.
func (t *Table) AppendRows(batch *Table) error {
	if t.parent != nil {
		return fmt.Errorf("dataframe: AppendRows on a shard table; use AppendShardRows")
	}
	src := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		bc := batch.Column(c.name)
		if bc == nil {
			return fmt.Errorf("dataframe: append batch is missing column %q", c.name)
		}
		if bc.kind != c.kind {
			return fmt.Errorf("dataframe: append batch column %q is %s, table has %s", c.name, bc.kind, c.kind)
		}
		src[i] = bc
	}
	if batch.NumCols() != len(t.cols) {
		return fmt.Errorf("dataframe: append batch has %d columns, table has %d", batch.NumCols(), len(t.cols))
	}
	if batch.NumRows() == 0 {
		return nil
	}
	for i, c := range t.cols {
		c.appendFrom(src[i])
	}
	t.recordEpoch(batch.NumRows())
	return nil
}

// AppendShardRows is AppendRows for tables with shard provenance: it appends
// the batch rows and records their parent row indices, keeping ShardOf
// consistent. The caller is responsible for having appended (or arranging to
// append) the same rows to the parent; the query layer's AppendSharded does
// both under one fence.
func (t *Table) AppendShardRows(batch *Table, parentRows []int) error {
	if t.parent == nil {
		return fmt.Errorf("dataframe: AppendShardRows on a table without shard provenance")
	}
	if batch.NumRows() != len(parentRows) {
		return fmt.Errorf("dataframe: %d batch rows but %d parent rows", batch.NumRows(), len(parentRows))
	}
	src := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		bc := batch.Column(c.name)
		if bc == nil {
			return fmt.Errorf("dataframe: append batch is missing column %q", c.name)
		}
		if bc.kind != c.kind {
			return fmt.Errorf("dataframe: append batch column %q is %s, table has %s", c.name, bc.kind, c.kind)
		}
		src[i] = bc
	}
	if batch.NumRows() == 0 {
		return nil
	}
	for i, c := range t.cols {
		c.appendFrom(src[i])
	}
	t.parentRows = append(t.parentRows, parentRows...)
	t.recordEpoch(batch.NumRows())
	return nil
}

// recordEpoch advances the epoch ledger after rows appended rows landed.
func (t *Table) recordEpoch(rows int) {
	if t.epochRows == nil {
		t.epochRows = append(t.epochRows, t.nrows)
	}
	t.nrows += rows
	t.epochRows = append(t.epochRows, t.nrows)
	t.epoch.Add(1)
}

// AddFloatColumnsFlat appends len(names) float columns backed by one flat
// column-major buffer: column j is vals[j*n : (j+1)*n] with validity
// valid[j*n : (j+1)*n], where n is the table's row count. The buffers are
// adopted, not copied (the bulk counterpart of AddColumn + NewFloatColumn for
// columnar batch outputs such as a feature matrix): NaN values are marked
// null in place, and callers must not reuse the buffers afterwards. On an
// empty table the row count is inferred from len(vals)/len(names).
func (t *Table) AddFloatColumnsFlat(names []string, vals []float64, valid []bool) error {
	n := t.nrows
	if len(t.cols) == 0 && len(names) > 0 {
		n = len(vals) / len(names)
	}
	if len(vals) != n*len(names) || len(valid) != n*len(names) {
		return fmt.Errorf("dataframe: flat buffer holds %d values, want %d columns x %d rows",
			len(vals), len(names), n)
	}
	for j, name := range names {
		v := vals[j*n : (j+1)*n : (j+1)*n]
		ok := valid[j*n : (j+1)*n : (j+1)*n]
		for i, x := range v {
			if math.IsNaN(x) {
				ok[i] = false
			}
		}
		if err := t.AddColumn(&Column{name: name, kind: KindFloat, floats: v, valid: ok}); err != nil {
			return err
		}
	}
	return nil
}

// DropColumn removes the named column; it is a no-op when absent.
func (t *Table) DropColumn(name string) {
	i, ok := t.index[name]
	if !ok {
		return
	}
	t.cols = append(t.cols[:i], t.cols[i+1:]...)
	delete(t.index, name)
	for j := i; j < len(t.cols); j++ {
		t.index[t.cols[j].name] = j
	}
	if len(t.cols) == 0 {
		t.nrows = 0
	}
}

// SelectColumns returns a new table sharing the named columns.
func (t *Table) SelectColumns(names ...string) (*Table, error) {
	out := &Table{index: map[string]int{}}
	for _, n := range names {
		c := t.Column(n)
		if c == nil {
			return nil, fmt.Errorf("dataframe: no column %q", n)
		}
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Take returns a new table containing the rows listed in idx, in order.
func (t *Table) Take(idx []int) *Table {
	out := &Table{index: map[string]int{}, nrows: len(idx)}
	for _, c := range t.cols {
		taken := c.Take(idx)
		out.index[taken.name] = len(out.cols)
		out.cols = append(out.cols, taken)
	}
	return out
}

// Filter returns the rows for which keep returns true.
func (t *Table) Filter(keep func(row int) bool) *Table {
	var idx []int
	for i := 0; i < t.nrows; i++ {
		if keep(i) {
			idx = append(idx, i)
		}
	}
	return t.Take(idx)
}

// FilterMask returns the rows where mask[i] is true. The mask length must
// equal the row count.
func (t *Table) FilterMask(mask []bool) *Table {
	idx := make([]int, 0, len(mask))
	for i, m := range mask {
		if m {
			idx = append(idx, i)
		}
	}
	return t.Take(idx)
}

// Head returns the first n rows (or fewer).
func (t *Table) Head(n int) *Table {
	if n > t.nrows {
		n = t.nrows
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return t.Take(idx)
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	out := &Table{index: map[string]int{}, nrows: t.nrows}
	for _, c := range t.cols {
		cc := c.Clone()
		out.index[cc.name] = len(out.cols)
		out.cols = append(out.cols, cc)
	}
	return out
}

// SortBy returns a copy of the table sorted ascending by the named column;
// NULLs sort last. Only numeric and string columns are supported.
func (t *Table) SortBy(name string) (*Table, error) {
	c := t.Column(name)
	if c == nil {
		return nil, fmt.Errorf("dataframe: no column %q", name)
	}
	idx := make([]int, t.nrows)
	for i := range idx {
		idx[i] = i
	}
	switch {
	case c.kind.IsNumeric() || c.kind == KindBool:
		sort.SliceStable(idx, func(a, b int) bool {
			va, oka := c.AsFloat(idx[a])
			vb, okb := c.AsFloat(idx[b])
			if oka != okb {
				return oka // non-null first
			}
			return va < vb
		})
	case c.kind == KindString:
		if c.compact {
			// Codes rank in domain order and the domain is sorted, so code
			// compares give the exact string order without materialising.
			codes := c.dict.enc.codes
			sort.SliceStable(idx, func(a, b int) bool {
				ia, ib := idx[a], idx[b]
				if c.valid[ia] != c.valid[ib] {
					return c.valid[ia]
				}
				return codes[ia] < codes[ib]
			})
			break
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ia, ib := idx[a], idx[b]
			if c.valid[ia] != c.valid[ib] {
				return c.valid[ia]
			}
			if !c.valid[ia] {
				return false // NULL rows are unreadable: keep input order
			}
			return c.strs[ia] < c.strs[ib]
		})
	default:
		return nil, fmt.Errorf("dataframe: cannot sort by %s column %q", c.kind, name)
	}
	return t.Take(idx), nil
}

// RowKey builds the composite group/join key for a row over the given
// columns.
func (t *Table) RowKey(row int, cols []*Column) string {
	return string(appendRowKey(nil, row, cols))
}

// appendRowKey is RowKey into a reusable buffer, for hot grouping loops.
func appendRowKey(b []byte, row int, cols []*Column) []byte {
	for j, c := range cols {
		if j > 0 {
			b = append(b, '\x1f')
		}
		b = c.AppendKey(b, row)
	}
	return b
}

// resolveColumns maps names to columns, failing on the first unknown name.
func (t *Table) resolveColumns(names []string) ([]*Column, error) {
	cols := make([]*Column, len(names))
	for i, n := range names {
		c := t.Column(n)
		if c == nil {
			return nil, fmt.Errorf("dataframe: no column %q", n)
		}
		cols[i] = c
	}
	return cols, nil
}

// String renders up to 10 rows for debugging.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.ColumnNames(), "\t"))
	sb.WriteByte('\n')
	n := t.nrows
	if n > 10 {
		n = 10
	}
	for i := 0; i < n; i++ {
		for j, c := range t.cols {
			if j > 0 {
				sb.WriteByte('\t')
			}
			if c.IsNull(i) {
				sb.WriteString("NULL")
			} else {
				fmt.Fprintf(&sb, "%v", c.Value(i))
			}
		}
		sb.WriteByte('\n')
	}
	if t.nrows > n {
		fmt.Fprintf(&sb, "... (%d rows)\n", t.nrows)
	}
	return sb.String()
}
