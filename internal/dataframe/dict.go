package dataframe

// Dictionary encoding of string columns. A DictEncoding replaces per-row Go
// strings with small integer codes over the sorted distinct domain: predicates
// become integer compares, grouping becomes dense-array arithmetic, and the
// counting-sort path reads the codes it used to re-derive per probe. The
// encoding is cached on the column behind a sync.Once, so every consumer of
// the same column — executors, shard subscribers, served plans — shares one
// encode pass.
//
// Appends (PR 9) extend a built encoding IN PLACE whenever the delta keeps
// existing codes stable: appended values already in the domain reuse their
// code, and values sorting strictly after the current maximum join the end
// of the sorted domain with the next codes — in both cases the extended
// encoding is exactly what a from-scratch encode of the grown column would
// produce, and the *DictEncoding pointer is unchanged (the query layer reads
// pointer stability as "codes did not shift"). A mid-domain value would
// shift every code at or after its rank, so it swaps in a fresh holder for a
// lazy full re-encode (new pointer); a delta pushing the cardinality past
// MaxDictCardinality sets the encoding to nil, matching the from-scratch
// result. Columns follow the engine-wide contract that they are not mutated
// while scans are in flight.

import (
	"slices"
	"sort"
	"sync"
)

// MaxDictCardinality bounds the distinct non-null values a dictionary holds;
// columns above the cap stay unencoded (Dict returns nil) and every consumer
// falls back to its generic string path. The bound matches the counting-sort
// domain cap, so "dictionary exists" and "counting-eligible domain" coincide
// for string columns.
const MaxDictCardinality = 1024

// DictEncoding is the immutable dictionary form of one string column: the
// sorted distinct non-null values, a per-row []uint32 code (rank in the
// sorted domain; unspecified at NULL rows), a validity bitmap (LSB-first
// within each word, matching the query layer's predicate bitmaps), and —
// when the cardinality admits — a narrow uint8 or uint16 mirror of the codes
// for width-specialised kernels.
type DictEncoding struct {
	values    []string
	codes     []uint32
	codes8    []uint8  // non-nil when Cardinality() <= 256
	codes16   []uint16 // non-nil when Cardinality() in (256, 65536]
	validBits []uint64
	nulls     int
}

// Values returns the sorted distinct non-null values; code c decodes to
// Values()[c]. The slice is shared and read-only.
func (d *DictEncoding) Values() []string { return d.values }

// Codes returns the per-row codes. Values at NULL rows are unspecified;
// callers gate on ValidBits. The slice is shared and read-only.
func (d *DictEncoding) Codes() []uint32 { return d.codes }

// Codes8 returns the uint8 mirror of Codes, or nil when the cardinality
// exceeds the uint8 range.
func (d *DictEncoding) Codes8() []uint8 { return d.codes8 }

// Codes16 returns the uint16 mirror of Codes, or nil when a narrower or no
// mirror exists.
func (d *DictEncoding) Codes16() []uint16 { return d.codes16 }

// ValidBits returns the validity bitmap: bit i (LSB-first within word i/64)
// is set iff row i is non-NULL. The slice is shared and read-only.
func (d *DictEncoding) ValidBits() []uint64 { return d.validBits }

// Cardinality returns the number of distinct non-null values.
func (d *DictEncoding) Cardinality() int { return len(d.values) }

// NullCount returns the number of NULL rows the encoding observed.
func (d *DictEncoding) NullCount() int { return d.nulls }

// NumRows returns the number of rows the encoding covers.
func (d *DictEncoding) NumRows() int { return len(d.codes) }

// CodeOf returns the code of value s and whether s is in the dictionary.
func (d *DictEncoding) CodeOf(s string) (uint32, bool) {
	i := sort.SearchStrings(d.values, s)
	if i < len(d.values) && d.values[i] == s {
		return uint32(i), true
	}
	return 0, false
}

// dictLazy is the column's once-guarded dictionary holder. built is written
// inside the once and read only under the column mutation contract (exclusive
// access), where it tells Append* whether an encoding exists to extend.
type dictLazy struct {
	once  sync.Once
	built bool
	enc   *DictEncoding
}

// Dict returns the column's dictionary encoding, building it on first use
// ("lazily on first scan"). It returns nil for non-string columns, for
// columns above MaxDictCardinality, and for string columns assembled outside
// the package constructors (no holder — they simply stay unencoded). Safe for
// concurrent use; all callers share one build.
func (c *Column) Dict() *DictEncoding {
	if c.kind != KindString || c.dict == nil {
		return nil
	}
	d := c.dict
	d.once.Do(func() {
		d.built = true
		d.enc = c.buildDictEncoding(MaxDictCardinality)
	})
	return d.enc
}

// buildDictEncoding scans the column once for its distinct domain and once
// more for the codes. maxCard above the cap returns nil. An all-NULL (or
// empty) column yields a valid encoding with an empty dictionary.
func (c *Column) buildDictEncoding(maxCard int) *DictEncoding {
	ranks := make(map[string]uint32)
	for i, s := range c.strs {
		if !c.valid[i] {
			continue
		}
		if _, dup := ranks[s]; !dup {
			if len(ranks) >= maxCard {
				return nil
			}
			ranks[s] = 0
		}
	}
	values := make([]string, 0, len(ranks))
	for s := range ranks {
		values = append(values, s)
	}
	slices.Sort(values)
	for rank, s := range values {
		ranks[s] = uint32(rank)
	}

	n := len(c.strs)
	d := &DictEncoding{
		values:    values,
		codes:     make([]uint32, n),
		validBits: make([]uint64, (n+63)/64),
	}
	switch {
	case len(values) <= 1<<8:
		d.codes8 = make([]uint8, n)
	case len(values) <= 1<<16:
		d.codes16 = make([]uint16, n)
	}
	for i, s := range c.strs {
		if !c.valid[i] {
			d.nulls++
			continue
		}
		code := ranks[s]
		d.codes[i] = code
		d.validBits[i>>6] |= 1 << uint(i&63)
		if d.codes8 != nil {
			d.codes8[i] = uint8(code)
		} else if d.codes16 != nil {
			d.codes16[i] = uint16(code)
		}
	}
	return d
}

// appendCode appends one row to the encoding: its code (pass 0 for NULL)
// and validity, growing the validity bitmap and keeping the narrow code
// mirrors in step — including rebuilding them when an extended domain
// crosses a width boundary.
func (d *DictEncoding) appendCode(code uint32, valid bool) {
	i := len(d.codes)
	d.codes = append(d.codes, code)
	if i&63 == 0 {
		d.validBits = append(d.validBits, 0)
	}
	if valid {
		d.validBits[i>>6] |= 1 << uint(i&63)
	} else {
		d.nulls++
	}
	card := len(d.values)
	switch {
	case d.codes8 != nil && card <= 1<<8:
		d.codes8 = append(d.codes8, uint8(code))
	case d.codes16 != nil && card <= 1<<16:
		d.codes16 = append(d.codes16, uint16(code))
	default:
		d.rebuildMirrors()
	}
}

// rebuildMirrors re-derives the narrow code mirrors from the full-width
// codes after a cardinality crossing.
func (d *DictEncoding) rebuildMirrors() {
	n := len(d.codes)
	d.codes8, d.codes16 = nil, nil
	switch {
	case len(d.values) <= 1<<8:
		d.codes8 = make([]uint8, n)
		for i, c := range d.codes {
			d.codes8[i] = uint8(c)
		}
	case len(d.values) <= 1<<16:
		d.codes16 = make([]uint16, n)
		for i, c := range d.codes {
			d.codes16[i] = uint16(c)
		}
	}
}

// extendDictStr absorbs one appended value into a built encoding in place
// when existing codes stay stable (value in-domain, or sorting after the
// current maximum with room under the cap); otherwise it swaps in a fresh
// holder (mid-domain value) or nils the encoding (cap crossed). Called by
// AppendStr before the value lands in strs.
func (c *Column) extendDictStr(v string) {
	d := c.dict
	if d == nil {
		c.dict = &dictLazy{} // zero-value column grown by appends
		return
	}
	if !d.built || d.enc == nil {
		return // unbuilt: the lazy build covers the new row; nil: stays nil
	}
	enc := d.enc
	code, ok := enc.CodeOf(v)
	if !ok {
		if n := len(enc.values); n > 0 && v < enc.values[n-1] {
			c.rematerialize()    // compact columns need strs back before the encoding goes
			c.dict = &dictLazy{} // mid-domain value shifts codes: full re-encode
			return
		}
		if len(enc.values) >= MaxDictCardinality {
			c.rematerialize()
			d.enc = nil // from-scratch over the grown column is unencodable too
			return
		}
		code = uint32(len(enc.values))
		enc.values = append(enc.values, v)
	}
	enc.appendCode(code, true)
}

// extendDictNull is extendDictStr for an appended NULL, which never shifts
// codes.
func (c *Column) extendDictNull() {
	d := c.dict
	if d == nil {
		c.dict = &dictLazy{}
		return
	}
	if !d.built || d.enc == nil {
		return
	}
	d.enc.appendCode(0, false)
}

// extendDictBulk is the batch form of extendDictStr used by appendFrom: one
// pass classifies the delta (all values in-domain or strictly above the
// current maximum → extend in place; cap crossed → nil; mid-domain value →
// fresh holder), a second appends the per-row codes.
func (c *Column) extendDictBulk(vals []string, valid []bool) {
	d := c.dict
	if d == nil {
		c.dict = &dictLazy{}
		return
	}
	if !d.built || d.enc == nil {
		return
	}
	enc := d.enc
	var fresh []string
	for i, s := range vals {
		if !valid[i] {
			continue
		}
		if _, ok := enc.CodeOf(s); !ok {
			fresh = append(fresh, s)
		}
	}
	if len(fresh) > 0 {
		slices.Sort(fresh)
		fresh = slices.Compact(fresh)
		if len(enc.values)+len(fresh) > MaxDictCardinality {
			c.rematerialize()
			d.enc = nil
			return
		}
		if n := len(enc.values); n > 0 && fresh[0] < enc.values[n-1] {
			c.rematerialize()
			c.dict = &dictLazy{}
			return
		}
		enc.values = append(enc.values, fresh...)
	}
	for i, s := range vals {
		if !valid[i] {
			enc.appendCode(0, false)
			continue
		}
		code, _ := enc.CodeOf(s)
		enc.appendCode(code, true)
	}
}

// EncodeDicts eagerly builds the dictionary of every string column ("eagerly
// at load"): long-lived consumers — the serving daemon binding a plan, a CLI
// about to run a large batch — call it once so no query pays the first-scan
// encode. Columns above the cardinality cap are skipped. It returns the
// number of columns now carrying an encoding.
func (t *Table) EncodeDicts() int {
	n := 0
	for _, c := range t.cols {
		if c.Dict() != nil {
			n++
		}
	}
	return n
}
