package dataframe

import (
	"fmt"
	"math"
	"sort"
)

// Concat vertically stacks tables with identical schemas (same column names
// and kinds, in any order; the first table's order wins). String columns whose
// inputs all carry a built dictionary over the SAME domain splice their code
// arrays directly instead of re-encoding row by row (see spliceStringColumns);
// unequal domains fall back to the generic append loop.
func Concat(tables ...*Table) (*Table, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("dataframe: concat of nothing")
	}
	first := tables[0]
	for _, t := range tables[1:] {
		if t.NumCols() != first.NumCols() {
			return nil, fmt.Errorf("dataframe: concat: column count mismatch (%d vs %d)", t.NumCols(), first.NumCols())
		}
	}
	out := &Table{index: map[string]int{}}
	for _, c := range first.cols {
		srcs := make([]*Column, 1, len(tables))
		srcs[0] = c
		for _, t := range tables[1:] {
			src := t.Column(c.name)
			if src == nil {
				return nil, fmt.Errorf("dataframe: concat: table missing column %q", c.name)
			}
			if src.kind != c.kind {
				return nil, fmt.Errorf("dataframe: concat: column %q kind mismatch (%s vs %s)", c.name, src.kind, c.kind)
			}
			srcs = append(srcs, src)
		}
		var acc *Column
		if c.kind == KindString {
			acc = spliceStringColumns(srcs)
		}
		if acc == nil {
			acc = c.Clone()
			for _, src := range srcs[1:] {
				for i := 0; i < src.Len(); i++ {
					if src.IsNull(i) {
						acc.AppendNull()
						continue
					}
					switch src.kind {
					case KindInt, KindTime:
						acc.AppendInt(src.ints[i])
					case KindFloat:
						acc.AppendFloat(src.floats[i])
					case KindString:
						acc.AppendStr(src.strAt(i))
					case KindBool:
						acc.AppendBool(src.bools[i])
					}
				}
			}
		}
		if err := out.AddColumn(acc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ColumnSummary describes one column's distribution.
type ColumnSummary struct {
	Name     string
	Kind     Kind
	Count    int // non-null values
	Nulls    int
	Distinct int     // distinct non-null values (strings/bools only; -1 otherwise)
	Mean     float64 // numeric kinds only
	Std      float64
	Min      float64
	P50      float64
	Max      float64
}

// Describe computes per-column summary statistics, the pandas-style
// diagnostic used when inspecting generated datasets.
func (t *Table) Describe() []ColumnSummary {
	out := make([]ColumnSummary, 0, len(t.cols))
	for _, c := range t.cols {
		s := ColumnSummary{Name: c.name, Kind: c.kind, Distinct: -1}
		switch c.kind {
		case KindString, KindBool:
			seen := map[string]bool{}
			for i := 0; i < c.Len(); i++ {
				if c.IsNull(i) {
					s.Nulls++
					continue
				}
				s.Count++
				seen[c.KeyString(i)] = true
			}
			s.Distinct = len(seen)
		default:
			var vals []float64
			for i := 0; i < c.Len(); i++ {
				v, ok := c.AsFloat(i)
				if !ok {
					s.Nulls++
					continue
				}
				s.Count++
				vals = append(vals, v)
			}
			if len(vals) > 0 {
				sort.Float64s(vals)
				s.Min = vals[0]
				s.Max = vals[len(vals)-1]
				s.P50 = vals[len(vals)/2]
				sum := 0.0
				for _, v := range vals {
					sum += v
				}
				s.Mean = sum / float64(len(vals))
				ss := 0.0
				for _, v := range vals {
					d := v - s.Mean
					ss += d * d
				}
				s.Std = math.Sqrt(ss / float64(len(vals)))
			}
		}
		out = append(out, s)
	}
	return out
}
