package dataframe

import "fmt"

// LeftJoin joins t with right on equal composite key values
// (leftOn[i] == rightOn[i] for all i), LEFT OUTER semantics: every left row
// appears exactly once; right columns are NULL on miss. When a right key
// occurs multiple times only the first match is used (the query executor
// always joins against aggregated tables whose keys are unique, matching the
// paper's `D LEFT JOIN q(R) ON D.k = q(R).k`).
//
// Right key columns are omitted from the output. Right non-key columns that
// collide with a left name get a "_r" suffix.
func (t *Table) LeftJoin(right *Table, leftOn, rightOn []string) (*Table, error) {
	if len(leftOn) != len(rightOn) || len(leftOn) == 0 {
		return nil, fmt.Errorf("dataframe: join key lists must be equal-length and non-empty")
	}
	lcols, err := t.resolveColumns(leftOn)
	if err != nil {
		return nil, err
	}
	rcols, err := right.resolveColumns(rightOn)
	if err != nil {
		return nil, err
	}
	// Hash the right side: key -> first row.
	lookup := make(map[string]int, right.nrows)
	for i := 0; i < right.nrows; i++ {
		k := right.RowKey(i, rcols)
		if _, ok := lookup[k]; !ok {
			lookup[k] = i
		}
	}
	// Map each left row to a right row (-1 on miss).
	match := make([]int, t.nrows)
	for i := 0; i < t.nrows; i++ {
		if r, ok := lookup[t.RowKey(i, lcols)]; ok {
			match[i] = r
		} else {
			match[i] = -1
		}
	}
	out := &Table{index: map[string]int{}}
	for _, c := range t.cols {
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	rightKeySet := map[string]bool{}
	for _, n := range rightOn {
		rightKeySet[n] = true
	}
	for _, rc := range right.cols {
		if rightKeySet[rc.name] {
			continue
		}
		name := rc.name
		if out.HasColumn(name) {
			name += "_r"
		}
		if err := out.AddColumn(takeWithMisses(rc, match).Rename(name)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// takeWithMisses is Take but a -1 index yields NULL.
func takeWithMisses(c *Column, idx []int) *Column {
	out := &Column{name: c.name, kind: c.kind, valid: make([]bool, len(idx))}
	switch c.kind {
	case KindInt, KindTime:
		out.ints = make([]int64, len(idx))
	case KindFloat:
		out.floats = make([]float64, len(idx))
	case KindString:
		out.strs = make([]string, len(idx))
		out.dict = &dictLazy{}
	case KindBool:
		out.bools = make([]bool, len(idx))
	}
	for j, i := range idx {
		if i < 0 {
			continue // stays NULL / zero
		}
		out.valid[j] = c.valid[i]
		switch c.kind {
		case KindInt, KindTime:
			out.ints[j] = c.ints[i]
		case KindFloat:
			out.floats[j] = c.floats[i]
		case KindString:
			out.strs[j] = c.strAt(i)
		case KindBool:
			out.bools[j] = c.bools[i]
		}
	}
	return out
}

// InnerJoin joins t with right keeping only matching rows; like LeftJoin it
// uses the first right match per key. Used by the dataset generators when
// flattening multi-table schemas into a single relevant table (the paper
// joins e.g. the Instacart order/product/department tables the same way).
func (t *Table) InnerJoin(right *Table, leftOn, rightOn []string) (*Table, error) {
	joined, err := t.LeftJoin(right, leftOn, rightOn)
	if err != nil {
		return nil, err
	}
	lcols, err := t.resolveColumns(leftOn)
	if err != nil {
		return nil, err
	}
	rcols, err := right.resolveColumns(rightOn)
	if err != nil {
		return nil, err
	}
	lookup := make(map[string]bool, right.nrows)
	for i := 0; i < right.nrows; i++ {
		lookup[right.RowKey(i, rcols)] = true
	}
	return joined.Filter(func(row int) bool {
		return lookup[t.RowKey(row, lcols)]
	}), nil
}
