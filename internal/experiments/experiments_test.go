package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/ml"
)

// tiny returns a configuration small enough that a full experiment completes
// in well under a second per cell.
func tiny() Config {
	return Config{
		TrainRows:             150,
		LogsPerKey:            5,
		Reps:                  1,
		Seed:                  3,
		NumFeatures:           3,
		NumTemplates:          2,
		QueriesPerTemplate:    2,
		Funcs:                 agg.Basic(),
		WarmupIters:           8,
		WarmupTopK:            3,
		GenIters:              3,
		TemplateProxyIters:    4,
		BeamWidth:             1,
		MaxDepth:              2,
		Models:                []ml.Kind{ml.KindLR},
		MaxSelectorCandidates: 6,
	}
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Out = &buf
	cells, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 6 datasets", len(cells))
	}
	if !strings.Contains(buf.String(), "tmall") {
		t.Fatal("report missing dataset row")
	}
}

func TestRunTable2(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Out = &buf
	cells, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("cells = %d", len(cells))
	}
	if !strings.Contains(buf.String(), "#T=2^attr") {
		t.Fatal("report missing template count column")
	}
}

func TestRunTable3SingleDataset(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Out = &buf
	cfg.Datasets = []string{"tmall"}
	cells, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 methods × 1 model × 1 dataset.
	if len(cells) != 10 {
		t.Fatalf("cells = %d, want 10", len(cells))
	}
	found := map[string]bool{}
	for _, c := range cells {
		found[c.Method] = true
		if c.Metric <= 0 || c.Metric > 1 {
			t.Errorf("%s metric %v out of AUC range", c.Method, c.Metric)
		}
	}
	for _, m := range Table3Methods() {
		if !found[m] {
			t.Errorf("method %s missing", m)
		}
	}
	if !strings.Contains(buf.String(), "FeatAug") {
		t.Fatal("report missing FeatAug row")
	}
}

func TestRunTable3RegressionSkipsChi2Gini(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"merchant"}
	cells, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Method == MethodFTChi2 || c.Method == MethodFTGini {
			t.Fatalf("%s should be skipped on regression", c.Method)
		}
	}
}

func TestRunTable6(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"household"}
	cells, err := RunTable6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Table VI uses only the traditional models; tiny() sets Models=[LR] but
	// RunTable6 overrides with the 3 traditional kinds.
	byMethod := map[string]int{}
	for _, c := range cells {
		byMethod[c.Method]++
		if c.Model == ml.KindDeepFM {
			t.Fatal("DeepFM must not appear in Table VI")
		}
	}
	for _, m := range []string{MethodARDA, MethodAutoFeatMAB, MethodAutoFeatDQN, MethodFeatAug} {
		if byMethod[m] == 0 {
			t.Errorf("method %s missing", m)
		}
	}
}

func TestRunTable7Ablation(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"instacart"}
	cells, err := RunTable7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 3 variants", len(cells))
	}
	names := map[string]bool{}
	for _, c := range cells {
		names[c.Method] = true
	}
	for _, want := range []string{"FeatAug(NoQTI)", "FeatAug(NoWU)", "FeatAug(Full)"} {
		if !names[want] {
			t.Errorf("variant %s missing", want)
		}
	}
}

func TestRunTable8Proxies(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"student"}
	cells, err := RunTable8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 3 proxies", len(cells))
	}
	names := map[string]bool{}
	for _, c := range cells {
		names[c.Method] = true
	}
	for _, want := range []string{"FeatAug-SC", "FeatAug-MI", "FeatAug-LR"} {
		if !names[want] {
			t.Errorf("proxy %s missing", want)
		}
	}
}

func TestRunFig5(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"tmall"}
	rows, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 variants", len(rows))
	}
	for _, r := range rows {
		if r.Seconds < 0 || r.Metric <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
}

func TestRunFig6(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"tmall"}
	rows, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // sweep 1,2,4,6,8
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].NumTemplates <= rows[i-1].NumTemplates {
			t.Fatal("sweep should be increasing")
		}
	}
}

func TestRunFig7(t *testing.T) {
	cfg := tiny()
	rows, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 sweep points", len(rows))
	}
	for _, r := range rows {
		if r.Total() <= 0 {
			t.Errorf("zero total time at x=%d", r.X)
		}
		if !strings.Contains(r.Dataset, "wide") {
			t.Errorf("dataset = %s, want student-wide", r.Dataset)
		}
	}
}

func TestRunFig8AndFig9(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"merchant"}
	rows, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("fig8 rows = %d", len(rows))
	}
	rows9, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows9) != 4 {
		t.Fatalf("fig9 rows = %d", len(rows9))
	}
}

func TestMeanCellsAverages(t *testing.T) {
	cells := []Cell{
		{Dataset: "a", Model: ml.KindLR, Method: "m", Metric: 0.4, Valid: 0.5, Seconds: 1},
		{Dataset: "a", Model: ml.KindLR, Method: "m", Metric: 0.6, Valid: 0.7, Seconds: 3},
		{Dataset: "b", Model: ml.KindLR, Method: "m", Metric: 1.0},
	}
	got := meanCells(cells)
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	if got[0].Metric != 0.5 || got[0].Valid != 0.6 || got[0].Seconds != 2 {
		t.Fatalf("mean = %+v", got[0])
	}
}

func TestMethodSupportsTask(t *testing.T) {
	if MethodSupportsTask(MethodFTChi2, ml.Regression) {
		t.Error("Chi2 should not support regression")
	}
	if !MethodSupportsTask(MethodFeatAug, ml.Regression) {
		t.Error("FeatAug supports regression")
	}
	if !MethodSupportsTask(MethodRandom, ml.MultiClass) {
		t.Error("Random supports multiclass")
	}
}

func TestUnknownDatasetPropagates(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"nope"}
	if _, err := RunTable3(cfg); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	if _, err := RunTable1(cfg); err == nil {
		t.Fatal("unknown dataset should fail in table1")
	}
}

func TestUnknownMethodFails(t *testing.T) {
	cfg := tiny().normalized()
	d, err := cfg.generate("tmall", 0)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := newEvalForTest(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.runMethod(ev, "nope", 1); err == nil {
		t.Fatal("unknown method should fail")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq := tiny()
	seq.Datasets = []string{"tmall"}
	seq.Parallel = 1
	a, err := RunTable3(seq)
	if err != nil {
		t.Fatal(err)
	}
	par := tiny()
	par.Datasets = []string{"tmall"}
	par.Parallel = 4
	b, err := RunTable3(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Method != b[i].Method || a[i].Metric != b[i].Metric {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRunJobsPanicRecovered(t *testing.T) {
	jobs := []job{
		func() (Cell, error) { return Cell{Method: "ok"}, nil },
		func() (Cell, error) { panic("boom") },
	}
	if _, err := runJobs(2, jobs); err == nil {
		t.Fatal("panicking job should surface as error")
	}
}

func TestRunJobsSequentialError(t *testing.T) {
	jobs := []job{
		func() (Cell, error) { return Cell{}, errBoom },
	}
	if _, err := runJobs(1, jobs); err == nil {
		t.Fatal("error should propagate")
	}
}

func TestToResultRows(t *testing.T) {
	cells := []Cell{{Dataset: "d", Model: ml.KindXGB, Method: "m", Metric: 0.5, Seconds: 1.5}}
	rows := ToResultRows(cells)
	if len(rows) != 1 || rows[0].Model != "XGB" || rows[0].Metric != 0.5 || rows[0].Seconds != 1.5 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestConfigNormalizedDefaults(t *testing.T) {
	c := Config{}.normalized()
	if c.TrainRows != 400 || c.Reps != 1 || c.Seed != 1 || c.NumFeatures != 8 ||
		c.NumTemplates != 4 || c.WarmupIters != 25 || c.MaxDepth != 2 ||
		len(c.Models) != 4 || c.MaxSelectorCandidates != 16 || c.Out == nil {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if len(c.Funcs) != 5 {
		t.Fatal("default funcs should be Basic (5)")
	}
}
