package experiments

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/ml"
	"repro/internal/pipeline"
)

// newEvalForTest builds an evaluator the way the runners do.
func newEvalForTest(cfg Config, d *datagen.Dataset) (*pipeline.Evaluator, error) {
	return pipeline.NewEvaluator(problem(d), ml.KindLR, cfg.Seed)
}

// errBoom is a sentinel for error-propagation tests.
var errBoom = fmt.Errorf("boom")
