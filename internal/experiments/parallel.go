package experiments

import "repro/internal/par"

// job is one independent experiment cell to compute.
type job func() (Cell, error)

// runJobs executes jobs with bounded parallelism, preserving result order.
// Parallelism is governed by Config.Parallel (0 → GOMAXPROCS). Every cell is
// deterministic given its own seed, so concurrency does not change results —
// only wall time, mirroring the paper's 32-vCPU runs. The pool scaffold is
// shared with the batch query executor via internal/par.
func runJobs(parallel int, jobs []job) ([]Cell, error) {
	results := make([]Cell, len(jobs))
	err := par.ForEach(parallel, len(jobs), func(i int) error {
		c, err := jobs[i]()
		results[i] = c
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
