package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// job is one independent experiment cell to compute.
type job func() (Cell, error)

// runJobs executes jobs with bounded parallelism, preserving result order.
// Parallelism is governed by Config.Parallel (0 → GOMAXPROCS). Every cell is
// deterministic given its own seed, so concurrency does not change results —
// only wall time, mirroring the paper's 32-vCPU runs.
func runJobs(parallel int, jobs []job) ([]Cell, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(jobs) {
		parallel = len(jobs)
	}
	if parallel <= 1 {
		out := make([]Cell, 0, len(jobs))
		for _, j := range jobs {
			c, err := j()
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
		return out, nil
	}
	results := make([]Cell, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallel)
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("experiments: job %d panicked: %v", i, r)
				}
			}()
			results[i], errs[i] = j()
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
