package experiments

import (
	"context"
	"fmt"

	"repro/internal/datagen"
	"repro/internal/feataug"
	"repro/internal/pipeline"
)

// Fig5Row is one series point of Figure 5: a QTI variant's wall time and the
// end-to-end metric it achieves.
type Fig5Row struct {
	Dataset string
	Variant string // "QTI w/o Opt1,2" | "QTI w/o Opt2" | "QTI with All Opts"
	Model   string
	Seconds float64
	Metric  float64
}

// RunFig5 regenerates Figure 5: the QTI optimisation ablation. Variant (a)
// disables both the low-cost proxy and the predictor (the paper's
// cannot-finish-in-6h configuration — here it finishes because everything is
// scaled down, but it is by far the slowest), variant (b) keeps the proxy
// but evaluates every node, variant (c) runs both optimisations.
func RunFig5(cfg Config) ([]Fig5Row, error) {
	cfg = cfg.normalized()
	names := cfg.Datasets
	if names == nil {
		names = datagen.OneToManyNames()
	}
	variants := []struct {
		name   string
		mutate func(*feataug.Config)
	}{
		{"QTI w/o Opt1,2", func(fc *feataug.Config) { fc.DisableProxyOpt = true; fc.DisablePredictor = true }},
		{"QTI w/o Opt2", func(fc *feataug.Config) { fc.DisablePredictor = true }},
		{"QTI with All Opts", func(fc *feataug.Config) {}},
	}
	var rows []Fig5Row
	fprintlnf(cfg.Out, "Figure 5: QTI optimisation ablation")
	fprintlnf(cfg.Out, "%-10s %-8s %-20s %10s %10s", "Dataset", "Model", "Variant", "QTI secs", "Metric")
	for _, name := range names {
		d, err := cfg.generate(name, 0)
		if err != nil {
			return nil, err
		}
		p := problem(d)
		for _, kind := range cfg.modelsFor(d.Task) {
			for _, v := range variants {
				ev, err := pipeline.NewEvaluator(p, kind, cfg.Seed)
				if err != nil {
					return nil, err
				}
				fc := cfg.feataugConfig(cfg.Seed)
				v.mutate(&fc)
				engine := feataug.NewEngine(ev, cfg.Funcs, fc)
				res, err := engine.Run(context.Background())
				if err != nil {
					return nil, fmt.Errorf("fig5 %s/%s/%s: %w", name, kind, v.name, err)
				}
				_, test, err := ev.QuerySetScores(res.QueryList())
				if err != nil {
					return nil, err
				}
				row := Fig5Row{
					Dataset: name, Variant: v.name, Model: kind.String(),
					Seconds: res.Timing.QTI.Seconds(), Metric: test,
				}
				rows = append(rows, row)
				fprintlnf(cfg.Out, "%-10s %-8s %-20s %10.3f %10.4f",
					row.Dataset, row.Model, row.Variant, row.Seconds, row.Metric)
			}
		}
	}
	return rows, nil
}

// Fig6Row is one point of Figure 6: metric as a function of the number of
// query templates.
type Fig6Row struct {
	Dataset      string
	Model        string
	NumTemplates int
	Metric       float64
}

// RunFig6 regenerates Figure 6: the performance trend when the number of
// query templates n varies (paper sweeps 1..8).
func RunFig6(cfg Config) ([]Fig6Row, error) {
	cfg = cfg.normalized()
	names := cfg.Datasets
	if names == nil {
		names = datagen.OneToManyNames()
	}
	sweep := []int{1, 2, 4, 6, 8}
	var rows []Fig6Row
	fprintlnf(cfg.Out, "Figure 6: metric vs number of query templates")
	fprintlnf(cfg.Out, "%-10s %-8s %12s %10s", "Dataset", "Model", "#templates", "Metric")
	for _, name := range names {
		d, err := cfg.generate(name, 0)
		if err != nil {
			return nil, err
		}
		p := problem(d)
		for _, kind := range cfg.modelsFor(d.Task) {
			for _, n := range sweep {
				ev, err := pipeline.NewEvaluator(p, kind, cfg.Seed)
				if err != nil {
					return nil, err
				}
				fc := cfg.feataugConfig(cfg.Seed)
				fc.NumTemplates = n
				engine := feataug.NewEngine(ev, cfg.Funcs, fc)
				res, err := engine.Run(context.Background())
				if err != nil {
					return nil, fmt.Errorf("fig6 %s/%s/n=%d: %w", name, kind, n, err)
				}
				_, test, err := ev.QuerySetScores(res.QueryList())
				if err != nil {
					return nil, err
				}
				rows = append(rows, Fig6Row{Dataset: name, Model: kind.String(), NumTemplates: n, Metric: test})
				fprintlnf(cfg.Out, "%-10s %-8s %12d %10.4f", name, kind, n, test)
			}
		}
	}
	return rows, nil
}

// ScaleRow is one point of the scalability figures (7, 8 and 9): the phase
// breakdown of FeatAug's running time at one sweep setting.
type ScaleRow struct {
	Dataset  string
	Model    string
	X        int // the swept quantity (#cols or #rows)
	QTI      float64
	Warmup   float64
	Generate float64
}

// Total returns the summed running time in seconds.
func (r ScaleRow) Total() float64 { return r.QTI + r.Warmup + r.Generate }

// RunFig7 regenerates Figure 7: running time vs the number of columns in the
// relevant table, on the horizontally duplicated Student-Wide dataset.
func RunFig7(cfg Config) ([]ScaleRow, error) {
	cfg = cfg.normalized()
	base := datagen.Student(datagen.Options{TrainRows: cfg.TrainRows, LogsPerKey: cfg.LogsPerKey, Seed: cfg.Seed})
	sweep := []int{10, 20, 40, 60}
	return cfg.runScaleSweep("Figure 7: running time vs #cols in R (student-wide)", sweep,
		func(x int) *datagen.Dataset { return datagen.WidenRelevant(base, x) })
}

// RunFig8 regenerates Figure 8: running time vs the number of rows in the
// training table.
func RunFig8(cfg Config) ([]ScaleRow, error) {
	cfg = cfg.normalized()
	names := cfg.Datasets
	if names == nil {
		names = []string{"merchant"} // the paper's in-text exemplar
	}
	var rows []ScaleRow
	for _, name := range names {
		big := cfg
		big.TrainRows = cfg.TrainRows * 2
		d, err := big.generate(name, 0)
		if err != nil {
			return nil, err
		}
		sweep := []int{cfg.TrainRows / 2, cfg.TrainRows, cfg.TrainRows * 3 / 2, cfg.TrainRows * 2}
		got, err := cfg.runScaleSweep(
			fmt.Sprintf("Figure 8: running time vs #rows in D (%s)", name), sweep,
			func(x int) *datagen.Dataset { return datagen.SubsampleTrain(d, x) })
		if err != nil {
			return nil, err
		}
		rows = append(rows, got...)
	}
	return rows, nil
}

// RunFig9 regenerates Figure 9: running time vs the number of rows in the
// relevant table.
func RunFig9(cfg Config) ([]ScaleRow, error) {
	cfg = cfg.normalized()
	names := cfg.Datasets
	if names == nil {
		names = []string{"student", "merchant"} // the paper's two exemplars
	}
	var rows []ScaleRow
	for _, name := range names {
		big := cfg
		big.LogsPerKey = cfg.LogsPerKey * 2
		d, err := big.generate(name, 0)
		if err != nil {
			return nil, err
		}
		total := d.Relevant.NumRows()
		sweep := []int{total / 4, total / 2, 3 * total / 4, total}
		got, err := cfg.runScaleSweep(
			fmt.Sprintf("Figure 9: running time vs #rows in R (%s)", name), sweep,
			func(x int) *datagen.Dataset { return datagen.SubsampleRelevant(d, x) })
		if err != nil {
			return nil, err
		}
		rows = append(rows, got...)
	}
	return rows, nil
}

// runScaleSweep runs FeatAug at every sweep point and records the per-phase
// time split.
func (c Config) runScaleSweep(title string, sweep []int, build func(x int) *datagen.Dataset) ([]ScaleRow, error) {
	fprintlnf(c.Out, "%s", title)
	fprintlnf(c.Out, "%-10s %-8s %8s %10s %10s %10s %10s", "Dataset", "Model", "X", "QTI s", "Warmup s", "Gen s", "Total s")
	var rows []ScaleRow
	for _, x := range sweep {
		d := build(x)
		p := problem(d)
		for _, kind := range c.modelsFor(d.Task) {
			ev, err := pipeline.NewEvaluator(p, kind, c.Seed)
			if err != nil {
				return nil, err
			}
			engine := feataug.NewEngine(ev, c.Funcs, c.feataugConfig(c.Seed))
			res, err := engine.Run(context.Background())
			if err != nil {
				return nil, fmt.Errorf("scale sweep %s x=%d: %w", d.Name, x, err)
			}
			row := ScaleRow{
				Dataset: d.Name, Model: kind.String(), X: x,
				QTI:      res.Timing.QTI.Seconds(),
				Warmup:   res.Timing.Warmup.Seconds(),
				Generate: res.Timing.Generate.Seconds(),
			}
			rows = append(rows, row)
			fprintlnf(c.Out, "%-10s %-8s %8d %10.3f %10.3f %10.3f %10.3f",
				row.Dataset, row.Model, row.X, row.QTI, row.Warmup, row.Generate, row.Total())
		}
	}
	return rows, nil
}
