// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic datasets: Table I/II (dataset and
// template statistics), Table III (one-to-many overall comparison), Table VI
// (single-table / one-to-one comparison), Table VII (ablation), Table VIII
// (proxy sweep), Figure 5 (QTI optimisation ablation), Figure 6 (number of
// query templates), and Figures 7–9 (scalability sweeps). Budgets are scaled
// to laptop size but every knob is exposed so runs can be scaled up.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/agg"
	"repro/internal/datagen"
	"repro/internal/feataug"
	"repro/internal/hpo"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/query"
)

// Config scales an experiment run. Zero values select fast defaults; the
// paper-faithful budgets are noted per field.
type Config struct {
	// TrainRows scales every generated training table (paper: 6k–37k).
	TrainRows int
	// LogsPerKey scales the relevant tables (paper: 1.6M–7.8M rows total).
	LogsPerKey int
	// Reps is the number of repetitions averaged (paper: 5).
	Reps int
	// Seed is the base seed; repetition r uses Seed+r.
	Seed int64
	// NumFeatures is the per-method feature budget (paper: 40).
	NumFeatures int
	// NumTemplates × QueriesPerTemplate should equal NumFeatures for
	// FeatAug/Random (paper: 8 × 5).
	NumTemplates       int
	QueriesPerTemplate int
	// Funcs is the aggregation set (paper: the 15 of Table II). Experiments
	// default to agg.Basic() for speed; pass agg.All() to match the paper.
	Funcs []agg.Func
	// FeatAug search budgets (see feataug.Config).
	WarmupIters, WarmupTopK, GenIters, TemplateProxyIters int
	BeamWidth, MaxDepth                                   int
	// Models to evaluate; nil → paper's four (LR, XGB, RF, DeepFM).
	Models []ml.Kind
	// Datasets to run; nil → the experiment's paper set.
	Datasets []string
	// MaxSelectorCandidates caps the DFS pool fed to the expensive wrapper
	// selectors (Forward/Backward); 0 = no cap.
	MaxSelectorCandidates int
	// Parallel bounds concurrent experiment cells (each cell is
	// independently seeded, so results are unchanged). 0 → GOMAXPROCS,
	// 1 → sequential.
	Parallel int
	// Out receives the rendered report; nil discards it.
	Out io.Writer
}

func (c Config) normalized() Config {
	if c.TrainRows <= 0 {
		c.TrainRows = 400
	}
	if c.LogsPerKey <= 0 {
		c.LogsPerKey = 8
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NumFeatures <= 0 {
		c.NumFeatures = 8
	}
	if c.NumTemplates <= 0 {
		c.NumTemplates = 4
	}
	if c.QueriesPerTemplate <= 0 {
		c.QueriesPerTemplate = 2
	}
	if c.Funcs == nil {
		c.Funcs = agg.Basic()
	}
	if c.WarmupIters <= 0 {
		c.WarmupIters = 25
	}
	if c.WarmupTopK <= 0 {
		c.WarmupTopK = 6
	}
	if c.GenIters <= 0 {
		c.GenIters = 8
	}
	if c.TemplateProxyIters <= 0 {
		c.TemplateProxyIters = 10
	}
	if c.BeamWidth <= 0 {
		c.BeamWidth = 2
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 2
	}
	if c.Models == nil {
		c.Models = ml.AllKinds()
	}
	if c.MaxSelectorCandidates <= 0 {
		c.MaxSelectorCandidates = 16
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// feataugConfig maps the experiment knobs onto the engine config.
func (c Config) feataugConfig(seed int64) feataug.Config {
	return feataug.Config{
		Seed:               seed,
		WarmupIters:        c.WarmupIters,
		WarmupTopK:         c.WarmupTopK,
		GenIters:           c.GenIters,
		NumTemplates:       c.NumTemplates,
		QueriesPerTemplate: c.QueriesPerTemplate,
		BeamWidth:          c.BeamWidth,
		MaxDepth:           c.MaxDepth,
		TemplateProxyIters: c.TemplateProxyIters,
		TPE:                hpo.TPEOptions{},
		Space:              query.SpaceOptions{},
	}
}

// problem converts a generated dataset into an evaluation problem.
func problem(d *datagen.Dataset) pipeline.Problem {
	return pipeline.Problem{
		Train: d.Train, Relevant: d.Relevant, Label: d.Label, Task: d.Task,
		Keys: d.Keys, AggAttrs: d.AggAttrs, PredAttrs: d.PredAttrs,
		BaseFeatures: d.BaseFeatures,
	}
}

// generate builds a dataset by name at the configured scale.
func (c Config) generate(name string, rep int) (*datagen.Dataset, error) {
	gen, err := datagen.ByName(name)
	if err != nil {
		return nil, err
	}
	return gen(datagen.Options{
		TrainRows:  c.TrainRows,
		LogsPerKey: c.LogsPerKey,
		Seed:       c.Seed + int64(rep)*1000,
	}), nil
}

// modelsFor filters the configured models by task support (DeepFM is
// binary-only).
func (c Config) modelsFor(task ml.Task) []ml.Kind {
	var out []ml.Kind
	for _, k := range c.Models {
		if k == ml.KindDeepFM && task != ml.Binary {
			continue
		}
		out = append(out, k)
	}
	return out
}

// Cell is one reported number: dataset × model × method.
type Cell struct {
	Dataset string
	Model   ml.Kind
	Method  string
	Metric  float64 // task metric on the test split (paper's table cells)
	Valid   float64 // validation metric
	Seconds float64 // wall time of the method, when measured
}

// meanCells averages cells across repetitions grouped by
// (dataset, model, method).
func meanCells(cells []Cell) []Cell {
	type key struct {
		d, m string
		k    ml.Kind
	}
	order := []key{}
	sums := map[key]*Cell{}
	counts := map[key]int{}
	for _, c := range cells {
		k := key{c.Dataset, c.Method, c.Model}
		if _, ok := sums[k]; !ok {
			cc := c
			cc.Metric, cc.Valid, cc.Seconds = 0, 0, 0
			sums[k] = &cc
			order = append(order, k)
		}
		sums[k].Metric += c.Metric
		sums[k].Valid += c.Valid
		sums[k].Seconds += c.Seconds
		counts[k]++
	}
	out := make([]Cell, 0, len(order))
	for _, k := range order {
		c := *sums[k]
		n := float64(counts[k])
		c.Metric /= n
		c.Valid /= n
		c.Seconds /= n
		out = append(out, c)
	}
	return out
}

// fprintlnf writes one formatted line, ignoring write errors (reports are
// best-effort diagnostics).
func fprintlnf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format+"\n", args...)
}

// ToResultRows converts comparison cells into archive records for the
// results package.
func ToResultRows(cells []Cell) []ResultRow {
	out := make([]ResultRow, len(cells))
	for i, c := range cells {
		out[i] = ResultRow{
			Dataset: c.Dataset,
			Model:   c.Model.String(),
			Method:  c.Method,
			Metric:  c.Metric,
			Seconds: c.Seconds,
		}
	}
	return out
}

// ResultRow mirrors results.Row without importing it (keeps the experiments
// package free of persistence concerns); cmd/feataug adapts between them.
type ResultRow struct {
	Dataset string
	Model   string
	Method  string
	Metric  float64
	Seconds float64
}
