package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/feataug"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/query"
)

// Method names as they appear in the paper's tables.
const (
	MethodFT          = "FT"
	MethodFTLR        = "FT+LR"
	MethodFTGBDT      = "FT+GBDT"
	MethodFTMI        = "FT+MI"
	MethodFTChi2      = "FT+Chi2"
	MethodFTGini      = "FT+Gini"
	MethodFTForward   = "FT+Forward"
	MethodFTBackward  = "FT+Backward"
	MethodRandom      = "Random"
	MethodFeatAug     = "FeatAug"
	MethodARDA        = "ARDA"
	MethodAutoFeatMAB = "AutoFeat-MAB"
	MethodAutoFeatDQN = "AutoFeat-DQN"
)

// Table3Methods is the comparison set of Table III (one-to-many datasets).
func Table3Methods() []string {
	return []string{
		MethodFT, MethodFTLR, MethodFTGBDT, MethodFTMI, MethodFTChi2,
		MethodFTGini, MethodFTForward, MethodFTBackward, MethodRandom, MethodFeatAug,
	}
}

// Table6Methods is the comparison set of Table VI (single-table / one-to-one
// datasets). Forward/Backward are omitted exactly as in the paper's Table VI.
func Table6Methods() []string {
	return []string{
		MethodFT, MethodFTLR, MethodFTGBDT, MethodFTMI, MethodFTChi2,
		MethodFTGini, MethodARDA, MethodAutoFeatMAB, MethodAutoFeatDQN,
		MethodRandom, MethodFeatAug,
	}
}

// selectorByMethod maps FT+X method names to selector kinds.
func selectorByMethod(method string) (baselines.SelectorKind, bool) {
	switch method {
	case MethodFT:
		return baselines.SelectorNone, true
	case MethodFTLR:
		return baselines.SelectorLR, true
	case MethodFTGBDT:
		return baselines.SelectorGBDT, true
	case MethodFTMI:
		return baselines.SelectorMI, true
	case MethodFTChi2:
		return baselines.SelectorChi2, true
	case MethodFTGini:
		return baselines.SelectorGini, true
	case MethodFTForward:
		return baselines.SelectorForward, true
	case MethodFTBackward:
		return baselines.SelectorBackward, true
	}
	return 0, false
}

// MethodSupportsTask reports whether a method applies to a task (Chi2/Gini
// are classification-only; the paper's regression column shows "-").
func MethodSupportsTask(method string, task ml.Task) bool {
	if sel, ok := selectorByMethod(method); ok {
		return sel.SupportsTask(task)
	}
	return true
}

// runMethod produces the method's query list and evaluates it, returning a
// filled Cell. FeatAug runs its full two-component pipeline; FT+X methods run
// DFS plus the selector; Random samples templates and queries uniformly.
func (c Config) runMethod(e *pipeline.Evaluator, method string, seed int64) (Cell, error) {
	cell := Cell{Dataset: "", Model: e.Model, Method: method}
	start := time.Now()
	var qs []query.Query
	var err error
	switch method {
	case MethodFeatAug:
		engine := feataug.NewEngine(e, c.Funcs, c.feataugConfig(seed))
		var res *feataug.Result
		res, err = engine.Run(context.Background())
		if err == nil {
			qs = res.QueryList()
		}
	case MethodRandom:
		qs, err = baselines.Random(e.P, c.Funcs, c.NumTemplates, c.QueriesPerTemplate, query.SpaceOptions{}, seed)
	case MethodARDA:
		qs, err = baselines.ARDA(e, c.dfsCandidates(e, method), c.NumFeatures, seed)
	case MethodAutoFeatMAB:
		qs, err = baselines.AutoFeature(e, c.dfsCandidates(e, method), c.NumFeatures, 3*c.NumFeatures, baselines.AutoFeatureMAB, seed)
	case MethodAutoFeatDQN:
		qs, err = baselines.AutoFeature(e, c.dfsCandidates(e, method), c.NumFeatures, 3*c.NumFeatures, baselines.AutoFeatureDQN, seed)
	default:
		sel, ok := selectorByMethod(method)
		if !ok {
			return cell, fmt.Errorf("experiments: unknown method %q", method)
		}
		qs, err = baselines.SelectFeatures(e, c.dfsCandidates(e, method), sel, c.NumFeatures)
	}
	if err != nil {
		return cell, fmt.Errorf("experiments: %s: %w", method, err)
	}
	validMetric, testMetric, err := e.QuerySetScores(qs)
	if err != nil {
		return cell, fmt.Errorf("experiments: evaluate %s: %w", method, err)
	}
	cell.Valid = validMetric
	cell.Metric = testMetric
	cell.Seconds = time.Since(start).Seconds()
	return cell, nil
}

// dfsCandidates enumerates the Featuretools pool, capped for the expensive
// wrapper selectors and RL methods.
func (c Config) dfsCandidates(e *pipeline.Evaluator, method string) []query.Query {
	cands := baselines.DFS(e.P, c.Funcs)
	switch method {
	case MethodFTForward, MethodFTBackward, MethodAutoFeatMAB, MethodAutoFeatDQN:
		if len(cands) > c.MaxSelectorCandidates {
			cands = cands[:c.MaxSelectorCandidates]
		}
	}
	return cands
}
