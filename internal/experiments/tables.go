package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/datagen"
	"repro/internal/feataug"
	"repro/internal/ml"
	"repro/internal/pipeline"
)

// RunTable1 reports the dataset statistics of Table I / Table IV: relevant
// row counts and train/valid/test sizes for every generated dataset.
func RunTable1(cfg Config) ([]Cell, error) {
	cfg = cfg.normalized()
	names := cfg.Datasets
	if names == nil {
		names = append(datagen.OneToManyNames(), datagen.SingleTableNames()...)
	}
	fprintlnf(cfg.Out, "Table I/IV: dataset statistics")
	fprintlnf(cfg.Out, "%-10s %12s %12s %22s", "Dataset", "rows in R", "cols in R", "train/valid/test")
	var cells []Cell
	for _, name := range names {
		d, err := cfg.generate(name, 0)
		if err != nil {
			return nil, err
		}
		n := d.Train.NumRows()
		nTrain := int(math.Round(0.6 * float64(n)))
		nValid := int(math.Round(0.2 * float64(n)))
		fprintlnf(cfg.Out, "%-10s %12d %12d %9d/%d/%d",
			name, d.Relevant.NumRows(), d.Relevant.NumCols(), nTrain, nValid, n-nTrain-nValid)
		cells = append(cells, Cell{Dataset: name, Method: "rows_in_R", Metric: float64(d.Relevant.NumRows())})
	}
	return cells, nil
}

// RunTable2 reports the query-template statistics of Table II / Table V:
// |F|, #A, #attr, K and the template-set size 2^|attr| per dataset.
func RunTable2(cfg Config) ([]Cell, error) {
	cfg = cfg.normalized()
	names := cfg.Datasets
	if names == nil {
		names = append(datagen.OneToManyNames(), datagen.SingleTableNames()...)
	}
	fprintlnf(cfg.Out, "Table II/V: query template statistics")
	fprintlnf(cfg.Out, "%-10s %6s %6s %8s %10s %-24s", "Dataset", "|F|", "#A", "#attr", "#T=2^attr", "K")
	var cells []Cell
	for _, name := range names {
		d, err := cfg.generate(name, 0)
		if err != nil {
			return nil, err
		}
		numT := math.Pow(2, float64(len(d.PredAttrs)))
		fprintlnf(cfg.Out, "%-10s %6d %6d %8d %10.0f %v",
			name, len(cfg.Funcs), len(d.AggAttrs), len(d.PredAttrs), numT, d.Keys)
		cells = append(cells, Cell{Dataset: name, Method: "num_templates", Metric: numT})
	}
	return cells, nil
}

// RunTable3 regenerates Table III: every method × the four one-to-many
// datasets × the four downstream models, reporting the test metric.
func RunTable3(cfg Config) ([]Cell, error) {
	cfg = cfg.normalized()
	names := cfg.Datasets
	if names == nil {
		names = datagen.OneToManyNames()
	}
	return cfg.runComparison(names, Table3Methods(), "Table III: one-to-many overall comparison")
}

// RunTable6 regenerates Table VI: the single-table / one-to-one datasets with
// the extended baseline set and the three traditional models.
func RunTable6(cfg Config) ([]Cell, error) {
	cfg = cfg.normalized()
	if cfg.Datasets == nil {
		cfg.Datasets = datagen.SingleTableNames()
	}
	// DeepFM is excluded: these are multiclass datasets.
	cfg.Models = ml.TraditionalKinds()
	return cfg.runComparison(cfg.Datasets, Table6Methods(), "Table VI: single-table / one-to-one comparison")
}

// runComparison is the generic dataset × model × method sweep behind Tables
// III and VI. Cells run concurrently under Config.Parallel.
func (c Config) runComparison(names, methods []string, title string) ([]Cell, error) {
	var jobs []job
	for rep := 0; rep < c.Reps; rep++ {
		rep := rep
		for _, name := range names {
			d, err := c.generate(name, rep)
			if err != nil {
				return nil, err
			}
			p := problem(d)
			for _, kind := range c.modelsFor(d.Task) {
				kind := kind
				for _, method := range methods {
					method := method
					if !MethodSupportsTask(method, d.Task) {
						continue
					}
					name := name
					jobs = append(jobs, func() (Cell, error) {
						ev, err := pipeline.NewEvaluator(p, kind, c.Seed+int64(rep))
						if err != nil {
							return Cell{}, err
						}
						cell, err := c.runMethod(ev, method, c.Seed+int64(rep))
						if err != nil {
							return Cell{}, fmt.Errorf("%s/%s: %w", name, kind, err)
						}
						cell.Dataset = name
						return cell, nil
					})
				}
			}
		}
	}
	cells, err := runJobs(c.Parallel, jobs)
	if err != nil {
		return nil, err
	}
	cells = meanCells(cells)
	renderComparison(c, title, cells)
	return cells, nil
}

// renderComparison prints the paper-style grid: one block per model, one row
// per method, one column per dataset.
func renderComparison(c Config, title string, cells []Cell) {
	fprintlnf(c.Out, "%s", title)
	byModel := map[ml.Kind]map[string]map[string]float64{} // model → method → dataset → metric
	datasetSet := map[string]bool{}
	for _, cell := range cells {
		if byModel[cell.Model] == nil {
			byModel[cell.Model] = map[string]map[string]float64{}
		}
		if byModel[cell.Model][cell.Method] == nil {
			byModel[cell.Model][cell.Method] = map[string]float64{}
		}
		byModel[cell.Model][cell.Method][cell.Dataset] = cell.Metric
		datasetSet[cell.Dataset] = true
	}
	var datasets []string
	for dname := range datasetSet {
		datasets = append(datasets, dname)
	}
	sort.Strings(datasets)
	var models []ml.Kind
	for m := range byModel {
		models = append(models, m)
	}
	sort.Slice(models, func(a, b int) bool { return models[a] < models[b] })
	for _, m := range models {
		fprintlnf(c.Out, "--- model %s ---", m)
		header := fmt.Sprintf("%-14s", "Method")
		for _, dname := range datasets {
			header += fmt.Sprintf(" %12s", dname)
		}
		fprintlnf(c.Out, "%s", header)
		var methods []string
		for meth := range byModel[m] {
			methods = append(methods, meth)
		}
		sort.Strings(methods)
		for _, meth := range methods {
			row := fmt.Sprintf("%-14s", meth)
			for _, dname := range datasets {
				if v, ok := byModel[m][meth][dname]; ok {
					row += fmt.Sprintf(" %12.4f", v)
				} else {
					row += fmt.Sprintf(" %12s", "-")
				}
			}
			fprintlnf(c.Out, "%s", row)
		}
	}
}

// RunTable7 regenerates Table VII, the ablation: FeatAug(NoQTI),
// FeatAug(NoWU) and FeatAug(Full) across datasets × models.
func RunTable7(cfg Config) ([]Cell, error) {
	cfg = cfg.normalized()
	names := cfg.Datasets
	if names == nil {
		names = datagen.OneToManyNames()
	}
	variants := []struct {
		name   string
		mutate func(*feataug.Config)
	}{
		{"FeatAug(NoQTI)", func(fc *feataug.Config) { fc.DisableQTI = true }},
		{"FeatAug(NoWU)", func(fc *feataug.Config) { fc.DisableWarmup = true }},
		{"FeatAug(Full)", func(fc *feataug.Config) {}},
	}
	var cells []Cell
	for rep := 0; rep < cfg.Reps; rep++ {
		for _, name := range names {
			d, err := cfg.generate(name, rep)
			if err != nil {
				return nil, err
			}
			p := problem(d)
			for _, kind := range cfg.modelsFor(d.Task) {
				for _, v := range variants {
					ev, err := pipeline.NewEvaluator(p, kind, cfg.Seed+int64(rep))
					if err != nil {
						return nil, err
					}
					fc := cfg.feataugConfig(cfg.Seed + int64(rep))
					v.mutate(&fc)
					engine := feataug.NewEngine(ev, cfg.Funcs, fc)
					res, err := engine.Run(context.Background())
					if err != nil {
						return nil, fmt.Errorf("%s/%s/%s: %w", name, kind, v.name, err)
					}
					_, test, err := ev.QuerySetScores(res.QueryList())
					if err != nil {
						return nil, err
					}
					cells = append(cells, Cell{Dataset: name, Model: kind, Method: v.name, Metric: test})
				}
			}
		}
	}
	cells = meanCells(cells)
	renderComparison(cfg, "Table VII: FeatAug ablation (NoQTI / NoWU / Full)", cells)
	return cells, nil
}

// RunTable8 regenerates Table VIII: FeatAug with the SC, MI and LR low-cost
// proxies across datasets × models.
func RunTable8(cfg Config) ([]Cell, error) {
	cfg = cfg.normalized()
	names := cfg.Datasets
	if names == nil {
		names = datagen.OneToManyNames()
	}
	proxies := []pipeline.ProxyKind{pipeline.ProxySC, pipeline.ProxyMI, pipeline.ProxyLR}
	var cells []Cell
	for rep := 0; rep < cfg.Reps; rep++ {
		for _, name := range names {
			d, err := cfg.generate(name, rep)
			if err != nil {
				return nil, err
			}
			p := problem(d)
			for _, kind := range cfg.modelsFor(d.Task) {
				for _, proxy := range proxies {
					ev, err := pipeline.NewEvaluator(p, kind, cfg.Seed+int64(rep))
					if err != nil {
						return nil, err
					}
					fc := cfg.feataugConfig(cfg.Seed + int64(rep))
					fc.Proxy = proxy
					engine := feataug.NewEngine(ev, cfg.Funcs, fc)
					res, err := engine.Run(context.Background())
					if err != nil {
						return nil, fmt.Errorf("%s/%s/%s: %w", name, kind, proxy, err)
					}
					_, test, err := ev.QuerySetScores(res.QueryList())
					if err != nil {
						return nil, err
					}
					cells = append(cells, Cell{Dataset: name, Model: kind, Method: "FeatAug-" + proxy.String(), Metric: test})
				}
			}
		}
	}
	cells = meanCells(cells)
	renderComparison(cfg, "Table VIII: low-cost proxy sweep (SC / MI / LR)", cells)
	return cells, nil
}
