package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/dataframe"
	"repro/internal/feataug"
	"repro/internal/query"
)

// testRelevant builds a relevant table: uid int keys over `entities`
// distinct entities, a float value column and a low-cardinality string
// category column for predicates.
func testRelevant(tb testing.TB, rows, entities int, seed int64) *dataframe.Table {
	rng := rand.New(rand.NewSource(seed))
	cats := []string{"a", "b", "c", "d"}
	uid := make([]int64, rows)
	val := make([]float64, rows)
	cat := make([]string, rows)
	for i := 0; i < rows; i++ {
		uid[i] = int64(rng.Intn(entities))
		val[i] = rng.NormFloat64() * 10
		cat[i] = cats[rng.Intn(len(cats))]
	}
	tbl, err := dataframe.NewTable(
		dataframe.NewIntColumn("uid", uid, nil),
		dataframe.NewFloatColumn("val", val, nil),
		dataframe.NewStringColumn("cat", cat, nil),
	)
	if err != nil {
		tb.Fatal(err)
	}
	return tbl
}

// testQueries returns `n` distinct planned queries over testRelevant's
// schema, exercising predicate-free, equality and range shapes.
func testQueries(n int) []feataug.PlannedQuery {
	all := []feataug.PlannedQuery{
		{Feature: "f0", Query: query.Query{Agg: agg.Sum, AggAttr: "val", Keys: []string{"uid"}}},
		{Feature: "f1", Query: query.Query{Agg: agg.Avg, AggAttr: "val", Keys: []string{"uid"},
			Preds: []query.Predicate{{Attr: "cat", Kind: query.PredEq, StrValue: "a"}}}},
		{Feature: "f2", Query: query.Query{Agg: agg.Count, AggAttr: "val", Keys: []string{"uid"},
			Preds: []query.Predicate{{Attr: "val", Kind: query.PredRange, HasLo: true, Lo: 0}}}},
		{Feature: "f3", Query: query.Query{Agg: agg.Max, AggAttr: "val", Keys: []string{"uid"},
			Preds: []query.Predicate{{Attr: "cat", Kind: query.PredEq, StrValue: "b"}}}},
		{Feature: "f4", Query: query.Query{Agg: agg.Std, AggAttr: "val", Keys: []string{"uid"}}},
	}
	return all[:n]
}

func testPlanJSON(tb testing.TB, n int) []byte {
	p := &feataug.FeaturePlan{Version: feataug.PlanVersion, Keys: []string{"uid"}, Queries: testQueries(n)}
	data, err := p.Encode()
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func keyTable(tb testing.TB, uids []int64) *dataframe.Table {
	tbl, err := dataframe.NewTable(dataframe.NewIntColumn("uid", uids, nil))
	if err != nil {
		tb.Fatal(err)
	}
	return tbl
}

// TestServeDifferentialCoalesced is the bit-identity contract of the
// coalescer: 16 concurrent requests served through fused micro-batches must
// return, over HTTP, exactly the floats a solo Transformer.Transform
// produces for the same rows (Go's JSON float encoding is
// shortest-round-trip, so parse-back is exact).
func TestServeDifferentialCoalesced(t *testing.T) {
	rel := testRelevant(t, 5000, 200, 1)
	planJSON := testPlanJSON(t, 5)
	srv := NewServer(Config{CoalesceWindow: 50 * time.Millisecond, MaxBatchRows: 1 << 20})
	if err := srv.AddPlan("p", planJSON, PlanBinding{Relevant: rel}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The ground truth: a fresh solo transformer over the same plan bytes.
	plan, err := feataug.DecodePlan(planJSON)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := plan.Transformer(rel)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 16
	rng := rand.New(rand.NewSource(2))
	uidSets := make([][]int64, clients)
	for c := range uidSets {
		rows := 1 + rng.Intn(4)
		uidSets[c] = make([]int64, rows)
		for i := range uidSets[c] {
			// Entities 200-219 do not exist: exercises join-miss nulls.
			uidSets[c][i] = int64(rng.Intn(220))
		}
	}

	responses := make([]transformResponse, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rows := make([]map[string]interface{}, len(uidSets[c]))
			for i, uid := range uidSets[c] {
				rows[i] = map[string]interface{}{"uid": uid}
			}
			body, _ := json.Marshal(map[string]interface{}{"rows": rows})
			resp, err := http.Post(ts.URL+"/v1/plans/p/transform", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[c] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[c] = json.NewDecoder(resp.Body).Decode(&responses[c])
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	for c := range responses {
		got := responses[c]
		want, err := solo.Transform(context.Background(), keyTable(t, uidSets[c]))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(uidSets[c]) {
			t.Fatalf("client %d: %d response rows, want %d", c, len(got.Rows), len(uidSets[c]))
		}
		for _, feat := range solo.FeatureNames() {
			vals, valid := want.Column(feat).Floats()
			for i := range got.Rows {
				gv, ok := got.Rows[i][feat]
				if !ok {
					t.Fatalf("client %d row %d: feature %q missing from response", c, i, feat)
				}
				if gv == nil {
					if valid[i] {
						t.Errorf("client %d row %d %s: got null, want %v", c, i, feat, vals[i])
					}
					continue
				}
				if !valid[i] {
					t.Errorf("client %d row %d %s: got %v, want null", c, i, feat, *gv)
				} else if *gv != vals[i] {
					t.Errorf("client %d row %d %s: got %v, want %v (not bit-identical)", c, i, feat, *gv, vals[i])
				}
			}
		}
	}

	st := srv.Stats()
	if len(st.Plans) != 1 {
		t.Fatalf("stats plans = %d", len(st.Plans))
	}
	ps := st.Plans[0]
	if ps.CoalescedBatches == 0 {
		t.Errorf("no coalesced batches despite %d concurrent clients inside a 50ms window", clients)
	}
	if ps.CoalescedBatches+ps.SoloBatches >= clients {
		t.Errorf("batches %d+%d not fewer than %d requests — nothing was fused",
			ps.CoalescedBatches, ps.SoloBatches, clients)
	}
	if ps.Requests != clients {
		t.Errorf("requests = %d, want %d", ps.Requests, clients)
	}
}

// TestServeStatsTableBytes checks the /v1/stats residency gauge: TableBytes
// reports the bound relevant table's resident estimate, and compacting the
// table's string columns (code-backed storage, PR 10) shows up as a drop on
// the very next snapshot — the gauge reads live table state, not a cached
// figure from bind time.
func TestServeStatsTableBytes(t *testing.T) {
	rel := testRelevant(t, 2000, 50, 3)
	srv := NewServer(Config{})
	if err := srv.AddPlan("p", testPlanJSON(t, 1), PlanBinding{Relevant: rel}); err != nil {
		t.Fatal(err)
	}
	want, _ := rel.MemBytes()
	before := srv.Stats().Plans[0].TableBytes
	if before != want || before <= 0 {
		t.Fatalf("TableBytes = %d, want %d (> 0)", before, want)
	}
	if n := rel.Compact(); n == 0 {
		t.Fatal("relevant table did not compact")
	}
	after := srv.Stats().Plans[0].TableBytes
	if after >= before {
		t.Errorf("TableBytes after Compact = %d, want < %d", after, before)
	}
	// The compacted table still serves: transform a batch and confirm the
	// endpoint-side JSON carries the gauge.
	if _, _, err := srv.Transform(context.Background(), "p", keyTable(t, []int64{1, 2})); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(srv.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"table_bytes":`)) {
		t.Errorf("stats JSON missing table_bytes: %s", data)
	}
}

// TestServeSoloMatchesCoalescedOff checks the window<0 escape hatch: every
// request runs its own pass and responses never report coalesced.
func TestServeSoloMatchesCoalescedOff(t *testing.T) {
	rel := testRelevant(t, 1000, 50, 3)
	srv := NewServer(Config{CoalesceWindow: -1})
	if err := srv.AddPlan("p", testPlanJSON(t, 2), PlanBinding{Relevant: rel}); err != nil {
		t.Fatal(err)
	}
	m, coalesced, err := srv.Transform(context.Background(), "p", keyTable(t, []int64{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if coalesced {
		t.Error("solo mode reported coalesced")
	}
	if m.NumRows() != 3 || m.NumFeatures() != 2 {
		t.Errorf("matrix = %dx%d, want 3x2", m.NumRows(), m.NumFeatures())
	}
	if st := srv.Stats().Plans[0]; st.SoloBatches != 1 || st.CoalescedBatches != 0 {
		t.Errorf("batches = %d solo / %d coalesced, want 1/0", st.SoloBatches, st.CoalescedBatches)
	}
}

// TestServeAdmissionControl parks one request inside a long window, then
// checks the next request over the in-flight row budget is rejected with the
// typed ErrOverloaded while the parked one still completes.
func TestServeAdmissionControl(t *testing.T) {
	rel := testRelevant(t, 1000, 50, 4)
	srv := NewServer(Config{CoalesceWindow: 300 * time.Millisecond, MaxInflightRows: 4})
	if err := srv.AddPlan("p", testPlanJSON(t, 2), PlanBinding{Relevant: rel}); err != nil {
		t.Fatal(err)
	}
	h := srv.plans["p"]

	type result struct {
		m   *query.FeatureMatrix
		err error
	}
	firstDone := make(chan result, 1)
	go func() {
		m, _, err := srv.Transform(context.Background(), "p", keyTable(t, []int64{1, 2, 3}))
		firstDone <- result{m, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for h.inflight.Load() != 3 {
		if time.Now().After(deadline) {
			t.Fatal("first request never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	_, _, err := srv.Transform(context.Background(), "p", keyTable(t, []int64{4, 5}))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget request error = %v, want ErrOverloaded", err)
	}
	if got := srv.Stats().Plans[0].RejectedRequests; got != 1 {
		t.Errorf("RejectedRequests = %d, want 1", got)
	}

	// Over HTTP the rejection is a 429.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/plans/p/transform", "application/json",
		strings.NewReader(`{"rows":[{"uid":7},{"uid":8}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}

	if res := <-firstDone; res.err != nil {
		t.Fatalf("parked request failed: %v", res.err)
	} else if res.m.NumRows() != 3 {
		t.Errorf("parked request rows = %d, want 3", res.m.NumRows())
	}
}

// multiPlanJSON builds a one-source MultiFeaturePlan over rel with the given
// schema fingerprint (pass the real one for a valid plan).
func multiPlanJSON(tb testing.TB, fingerprint string, n int) []byte {
	mp := &feataug.MultiFeaturePlan{
		Version: feataug.MultiPlanVersion,
		Sources: []feataug.PlanSource{{
			Name:              "rel",
			SchemaFingerprint: fingerprint,
			Plan:              feataug.FeaturePlan{Version: feataug.PlanVersion, Keys: []string{"uid"}, Queries: testQueries(n)},
		}},
	}
	for i := range mp.Sources[0].Plan.Queries {
		mp.Sources[0].Plan.Queries[i].Feature = fmt.Sprintf("rel_feataug_%d", i)
	}
	data, err := mp.Encode()
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// TestServeHotSwap covers the swap semantics satellite: a schema-fingerprint
// mismatch must fail with ErrSchemaMismatch (409) leaving the old plan
// serving at its old version; corrupt bytes must fail with ErrPlanCorrupt
// (400); a valid swap bumps the version and serves the new feature set.
func TestServeHotSwap(t *testing.T) {
	rel := testRelevant(t, 2000, 100, 5)
	plan := &feataug.FeaturePlan{Version: feataug.PlanVersion, Keys: []string{"uid"}, Queries: testQueries(2)}
	goodFP := plan.SchemaFingerprint(rel)
	srv := NewServer(Config{CoalesceWindow: time.Millisecond})
	if err := srv.AddPlan("m", multiPlanJSON(t, goodFP, 2), PlanBinding{Sources: map[string]*dataframe.Table{"rel": rel}}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	transform := func() (int, transformResponse) {
		resp, err := http.Post(ts.URL+"/v1/plans/m/transform", "application/json",
			strings.NewReader(`{"rows":[{"uid":11}]}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var tr transformResponse
		_ = json.NewDecoder(resp.Body).Decode(&tr)
		return resp.StatusCode, tr
	}

	if code, tr := transform(); code != http.StatusOK || tr.Version != 1 {
		t.Fatalf("initial transform = %d v%d, want 200 v1", code, tr.Version)
	}

	// Mismatched fingerprint: rejected with 409, old plan keeps serving.
	resp, err := http.Post(ts.URL+"/v1/plans/m", "application/json",
		bytes.NewReader(multiPlanJSON(t, "0123456789abcdef", 3)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("fingerprint-mismatch swap status = %d, want 409", resp.StatusCode)
	}
	if _, err := srv.Swap("m", multiPlanJSON(t, "0123456789abcdef", 3)); !errors.Is(err, feataug.ErrSchemaMismatch) {
		t.Errorf("fingerprint-mismatch Swap error = %v, want ErrSchemaMismatch", err)
	}
	if code, tr := transform(); code != http.StatusOK || tr.Version != 1 || len(tr.Features) != 2 {
		t.Fatalf("post-failed-swap transform = %d v%d (%d features), want 200 v1 (2)", code, tr.Version, len(tr.Features))
	}

	// Corrupt bytes: 400, still serving.
	resp, err = http.Post(ts.URL+"/v1/plans/m", "application/json", strings.NewReader("{truncated"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt swap status = %d, want 400", resp.StatusCode)
	}

	// Valid swap to a wider plan: version bumps, new features serve.
	resp, err = http.Post(ts.URL+"/v1/plans/m", "application/json", bytes.NewReader(multiPlanJSON(t, goodFP, 4)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid swap status = %d, want 200", resp.StatusCode)
	}
	code, tr := transform()
	if code != http.StatusOK || tr.Version != 2 || len(tr.Features) != 4 {
		t.Fatalf("post-swap transform = %d v%d (%d features), want 200 v2 (4)", code, tr.Version, len(tr.Features))
	}
	ps := srv.Stats().Plans[0]
	if ps.SwapCount != 1 || ps.Version != 2 {
		t.Errorf("stats swap_count=%d version=%d, want 1/2", ps.SwapCount, ps.Version)
	}
}

// TestServeSwapDuringTransforms hammers transforms concurrently with
// hot-swaps; run under -race this is the swap-safety regression test. Every
// request must succeed on whichever plan version it landed on, with the
// right feature count for that version.
func TestServeSwapDuringTransforms(t *testing.T) {
	rel := testRelevant(t, 2000, 100, 6)
	plan := &feataug.FeaturePlan{Version: feataug.PlanVersion, Keys: []string{"uid"}, Queries: testQueries(2)}
	goodFP := plan.SchemaFingerprint(rel)
	srv := NewServer(Config{CoalesceWindow: 500 * time.Microsecond})
	if err := srv.AddPlan("m", multiPlanJSON(t, goodFP, 2), PlanBinding{Sources: map[string]*dataframe.Table{"rel": rel}}); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const perWorker = 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m, _, err := srv.Transform(context.Background(), "m", keyTable(t, []int64{int64(w*perWorker + i)}))
				if err != nil {
					errCh <- fmt.Errorf("worker %d req %d: %w", w, i, err)
					return
				}
				if nf := m.NumFeatures(); nf != 2 && nf != 4 {
					errCh <- fmt.Errorf("worker %d req %d: %d features, want 2 or 4", w, i, nf)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		n := 2 + 2*(i%2) // alternate 2- and 4-feature plans
		if _, err := srv.Swap("m", multiPlanJSON(t, goodFP, n)); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got := srv.Stats().Plans[0].SwapCount; got != 10 {
		t.Errorf("SwapCount = %d, want 10", got)
	}
}

// TestServeDrain parks requests in an open window, drains, and checks the
// parked requests complete while new ones are refused.
func TestServeDrain(t *testing.T) {
	rel := testRelevant(t, 1000, 50, 7)
	srv := NewServer(Config{CoalesceWindow: 10 * time.Second})
	if err := srv.AddPlan("p", testPlanJSON(t, 2), PlanBinding{Relevant: rel}); err != nil {
		t.Fatal(err)
	}
	h := srv.plans["p"]
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, _, err := srv.Transform(context.Background(), "p", keyTable(t, []int64{int64(i)}))
			results <- err
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.inflight.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("requests never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() { srv.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not finish — parked requests were not flushed")
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("parked request %d failed across drain: %v", i, err)
		}
	}
	if _, _, err := srv.Transform(context.Background(), "p", keyTable(t, []int64{9})); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain transform error = %v, want ErrDraining", err)
	}
}

// TestDecodeRows covers the request codec's typed failure modes.
func TestDecodeRows(t *testing.T) {
	spec := []keyCol{{name: "uid", kind: dataframe.KindInt}, {name: "tag", kind: dataframe.KindString}}
	ok := `{"rows":[{"uid":3,"tag":"x"},{"uid":-1,"tag":"y"}]}`
	tbl, err := decodeRows(strings.NewReader(ok), spec)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 || !tbl.HasColumn("uid") || !tbl.HasColumn("tag") {
		t.Fatalf("decoded table shape wrong: %d rows", tbl.NumRows())
	}

	bad := map[string]string{
		"not json":          `{rows:`,
		"no rows":           `{"rows":[]}`,
		"missing key":       `{"rows":[{"uid":3}]}`,
		"null key":          `{"rows":[{"uid":null,"tag":"x"}]}`,
		"fractional int":    `{"rows":[{"uid":3.5,"tag":"x"}]}`,
		"string for int":    `{"rows":[{"uid":"3","tag":"x"}]}`,
		"number for string": `{"rows":[{"uid":3,"tag":7}]}`,
	}
	for name, body := range bad {
		if _, err := decodeRows(strings.NewReader(body), spec); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", name, err)
		}
	}
}

// TestServeHTTPSurface covers the remaining endpoints: healthz, plan
// listing, unknown plans, and bad transform bodies.
func TestServeHTTPSurface(t *testing.T) {
	rel := testRelevant(t, 500, 20, 8)
	srv := NewServer(Config{})
	if err := srv.AddPlan("p", testPlanJSON(t, 2), PlanBinding{Relevant: rel}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/plans")
	if err != nil {
		t.Fatal(err)
	}
	var plans struct {
		Plans []struct {
			Plan     string   `json:"plan"`
			Version  int64    `json:"version"`
			Keys     []string `json:"keys"`
			Features []string `json:"features"`
		} `json:"plans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&plans); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(plans.Plans) != 1 || plans.Plans[0].Plan != "p" || len(plans.Plans[0].Features) != 2 {
		t.Errorf("plans listing = %+v", plans)
	}

	resp, err = http.Post(ts.URL+"/v1/plans/nope/transform", "application/json",
		strings.NewReader(`{"rows":[{"uid":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown plan = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/plans/p/transform", "application/json", strings.NewReader(`{"rows":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty rows = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Plans) != 1 || st.Plans[0].Plan != "p" {
		t.Errorf("stats = %+v", st)
	}
}

// TestServeAppend covers the PR 9 streaming-ingest endpoint: appended rows
// are absorbed into the bound relevant table without rebinding, the next
// transform reflects them bit-identically to a from-scratch transformer over
// the grown data, and the stats surface reports the append counters and table
// epoch. Error shape: multi-source plans and malformed rows are 400s, unknown
// plans 404s.
func TestServeAppend(t *testing.T) {
	rel := testRelevant(t, 2000, 100, 10)
	planJSON := testPlanJSON(t, 4)
	srv := NewServer(Config{CoalesceWindow: -1})
	if err := srv.AddPlan("p", planJSON, PlanBinding{Relevant: rel}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the plan's caches so the append exercises the delta path.
	uids := []int64{1, 2, 3, 97, 99}
	if _, _, err := srv.Transform(context.Background(), "p", keyTable(t, uids)); err != nil {
		t.Fatal(err)
	}

	// Rows target entities 1 and 99; one row carries a NULL val and a missing
	// cat (both NULLs on the table).
	appendBody := `{"rows":[
		{"uid":1,"val":123.5,"cat":"a"},
		{"uid":99,"val":null},
		{"uid":1,"val":-7.25,"cat":"d"}
	]}`
	resp, err := http.Post(ts.URL+"/v1/plans/p/append", "application/json", strings.NewReader(appendBody))
	if err != nil {
		t.Fatal(err)
	}
	var ar appendResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status = %d", resp.StatusCode)
	}
	if ar.Appended != 3 || ar.Epoch != 1 || ar.TableRows != 2003 {
		t.Fatalf("append response = %+v, want 3 rows at epoch 1, 2003 total", ar)
	}

	// The served features must now match a from-scratch transformer over the
	// grown table, bit for bit.
	got, _, err := srv.Transform(context.Background(), "p", keyTable(t, uids))
	if err != nil {
		t.Fatal(err)
	}
	grown, err := dataframe.Concat(testRelevant(t, 2000, 100, 10), dataframe.MustNewTable(
		dataframe.NewIntColumn("uid", []int64{1, 99, 1}, nil),
		dataframe.NewFloatColumn("val", []float64{123.5, 0, -7.25}, []bool{true, false, true}),
		dataframe.NewStringColumn("cat", []string{"a", "", "d"}, []bool{true, false, true}),
	))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := feataug.DecodePlan(planJSON)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := plan.Transformer(grown)
	if err != nil {
		t.Fatal(err)
	}
	want, err := solo.Transform(context.Background(), keyTable(t, uids))
	if err != nil {
		t.Fatal(err)
	}
	for j, feat := range solo.FeatureNames() {
		wvals, wvalid := want.Column(feat).Floats()
		gvals, gvalid := got.Col(j)
		for i := range uids {
			if gvalid[i] != wvalid[i] || (wvalid[i] && gvals[i] != wvals[i]) {
				t.Errorf("uid %d %s: got (%v,%v), from scratch (%v,%v)",
					uids[i], feat, gvals[i], gvalid[i], wvals[i], wvalid[i])
			}
		}
	}

	ps := srv.Stats().Plans[0]
	if ps.Appends != 1 || ps.AppendedRows != 3 || ps.TableEpoch != 1 {
		t.Errorf("stats appends/rows/epoch = %d/%d/%d, want 1/3/1", ps.Appends, ps.AppendedRows, ps.TableEpoch)
	}

	// Error surface.
	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/plans/nope/append", appendBody); code != http.StatusNotFound {
		t.Errorf("unknown plan append = %d, want 404", code)
	}
	if code := post("/v1/plans/p/append", `{"rows":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty append = %d, want 400", code)
	}
	if code := post("/v1/plans/p/append", `{"rows":[{"uid":"one"}]}`); code != http.StatusBadRequest {
		t.Errorf("mistyped append = %d, want 400", code)
	}
	fp := (&feataug.FeaturePlan{Version: feataug.PlanVersion, Keys: []string{"uid"}, Queries: testQueries(2)}).SchemaFingerprint(rel)
	if err := srv.AddPlan("m", multiPlanJSON(t, fp, 2), PlanBinding{Sources: map[string]*dataframe.Table{"rel": rel}}); err != nil {
		t.Fatal(err)
	}
	if code := post("/v1/plans/m/append", appendBody); code != http.StatusBadRequest {
		t.Errorf("multi-source append = %d, want 400", code)
	}
}

// TestServeStatsDictCounters pins the PR 8 dictionary counters on the stats
// surface: the /v1/stats JSON must carry the new executor fields, binding a
// plan must eagerly encode the relevant table's string columns, and serving
// a plan with string-equality predicates must route them through the
// dictionary-code kernels.
func TestServeStatsDictCounters(t *testing.T) {
	rel := testRelevant(t, 500, 20, 9)
	srv := NewServer(Config{CoalesceWindow: -1})
	if err := srv.AddPlan("p", testPlanJSON(t, 4), PlanBinding{Relevant: rel}); err != nil {
		t.Fatal(err)
	}
	// AddPlan encodes at bind; the table's one string column is encodable.
	if n := rel.EncodeDicts(); n != 1 {
		t.Errorf("EncodeDicts = %d encoded columns, want 1", n)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/plans/p/transform", "application/json",
		strings.NewReader(`{"rows":[{"uid":1},{"uid":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("transform = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"DictEncodes", "DictHits", "CodePredScans"} {
		if !bytes.Contains(raw, []byte(field)) {
			t.Errorf("/v1/stats JSON missing executor field %q", field)
		}
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Plans) != 1 {
		t.Fatalf("stats plans = %d", len(st.Plans))
	}
	ex := st.Plans[0].Executor
	if ex.DictEncodes+ex.DictHits == 0 {
		t.Errorf("no dictionary lookups recorded: %+v", ex)
	}
	if ex.CodePredScans == 0 {
		t.Errorf("string-equality predicates did not use the code kernels: %+v", ex)
	}
}
