package serve

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dataframe"
	"repro/internal/query"
)

// keyCol is one join-key column of a plan's request schema: the column name
// and the physical kind request values must carry, resolved at bind time
// from the relevant table(s) so request rows join under exactly the key
// encoding the executor groups by.
type keyCol struct {
	name string
	kind dataframe.Kind
}

// requestSchema resolves the plan's required key columns against the bound
// relevant tables (first table carrying the column wins; multi-table plans
// keep key kinds consistent across sources by construction of the fit).
func requestSchema(keys []string, tables ...*dataframe.Table) ([]keyCol, error) {
	spec := make([]keyCol, 0, len(keys))
	for _, k := range keys {
		found := false
		for _, t := range tables {
			if c := t.Column(k); c != nil {
				spec = append(spec, keyCol{name: k, kind: c.Kind()})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("serve: key column %q missing from every bound relevant table", k)
		}
	}
	return spec, nil
}

// transformRequest is the wire shape of POST /v1/plans/{name}/transform:
// one JSON object per entity row, carrying the plan's join keys.
type transformRequest struct {
	Rows []map[string]any `json:"rows"`
}

// decodeRows parses a transform request body into a typed key table matching
// spec. Every row must carry every key with a value of the column's kind
// (integral JSON numbers for int and time keys); anything else fails with
// ErrBadRequest. The returned table has len(request rows) rows.
func decodeRows(r io.Reader, spec []keyCol) (*dataframe.Table, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var req transformRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return rowsToTable(req.Rows, spec)
}

// rowsToTable types the decoded rows into a dataframe.Table under spec.
func rowsToTable(rows []map[string]any, spec []keyCol) (*dataframe.Table, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("%w: no rows", ErrBadRequest)
	}
	cols := make([]*dataframe.Column, len(spec))
	for j, kc := range spec {
		switch kc.kind {
		case dataframe.KindInt, dataframe.KindTime:
			vals := make([]int64, n)
			for i, row := range rows {
				num, err := keyNumber(row, i, kc.name)
				if err != nil {
					return nil, err
				}
				v, err := num.Int64()
				if err != nil {
					return nil, fmt.Errorf("%w: row %d key %q: %v is not an integer", ErrBadRequest, i, kc.name, num)
				}
				vals[i] = v
			}
			if kc.kind == dataframe.KindTime {
				cols[j] = dataframe.NewTimeColumn(kc.name, vals, nil)
			} else {
				cols[j] = dataframe.NewIntColumn(kc.name, vals, nil)
			}
		case dataframe.KindFloat:
			vals := make([]float64, n)
			for i, row := range rows {
				num, err := keyNumber(row, i, kc.name)
				if err != nil {
					return nil, err
				}
				v, err := num.Float64()
				if err != nil {
					return nil, fmt.Errorf("%w: row %d key %q: %v is not a number", ErrBadRequest, i, kc.name, num)
				}
				vals[i] = v
			}
			cols[j] = dataframe.NewFloatColumn(kc.name, vals, nil)
		case dataframe.KindString:
			vals := make([]string, n)
			for i, row := range rows {
				v, err := keyValue(row, i, kc.name)
				if err != nil {
					return nil, err
				}
				s, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("%w: row %d key %q: expected string, got %T", ErrBadRequest, i, kc.name, v)
				}
				vals[i] = s
			}
			cols[j] = dataframe.NewStringColumn(kc.name, vals, nil)
		case dataframe.KindBool:
			vals := make([]bool, n)
			for i, row := range rows {
				v, err := keyValue(row, i, kc.name)
				if err != nil {
					return nil, err
				}
				b, ok := v.(bool)
				if !ok {
					return nil, fmt.Errorf("%w: row %d key %q: expected bool, got %T", ErrBadRequest, i, kc.name, v)
				}
				vals[i] = b
			}
			cols[j] = dataframe.NewBoolColumn(kc.name, vals, nil)
		default:
			return nil, fmt.Errorf("serve: key column %q has unsupported kind %s", kc.name, kc.kind)
		}
	}
	return dataframe.NewTable(cols...)
}

func keyValue(row map[string]any, i int, name string) (any, error) {
	v, ok := row[name]
	if !ok || v == nil {
		return nil, fmt.Errorf("%w: row %d is missing key %q", ErrBadRequest, i, name)
	}
	return v, nil
}

func keyNumber(row map[string]any, i int, name string) (json.Number, error) {
	v, err := keyValue(row, i, name)
	if err != nil {
		return "", err
	}
	num, ok := v.(json.Number)
	if !ok {
		return "", fmt.Errorf("%w: row %d key %q: expected number, got %T", ErrBadRequest, i, name, v)
	}
	return num, nil
}

// decodeAppendRows parses an append request body — the same rows-of-objects
// shape as transform, but over the relevant table's FULL schema — into a batch
// table matching t's columns. A missing or JSON-null value becomes a NULL;
// present values must match the column's kind (integral JSON numbers for int
// and time columns). The batch is what Table.AppendRows accepts.
func decodeAppendRows(r io.Reader, t *dataframe.Table) (*dataframe.Table, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var req transformRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	n := len(req.Rows)
	if n == 0 {
		return nil, fmt.Errorf("%w: no rows", ErrBadRequest)
	}
	cols := make([]*dataframe.Column, 0, t.NumCols())
	for _, name := range t.ColumnNames() {
		kind := t.Column(name).Kind()
		valid := make([]bool, n)
		var col *dataframe.Column
		switch kind {
		case dataframe.KindInt, dataframe.KindTime:
			vals := make([]int64, n)
			for i, row := range req.Rows {
				v, ok := row[name]
				if !ok || v == nil {
					continue
				}
				num, ok := v.(json.Number)
				if !ok {
					return nil, fmt.Errorf("%w: row %d column %q: expected number, got %T", ErrBadRequest, i, name, v)
				}
				iv, err := num.Int64()
				if err != nil {
					return nil, fmt.Errorf("%w: row %d column %q: %v is not an integer", ErrBadRequest, i, name, num)
				}
				vals[i], valid[i] = iv, true
			}
			if kind == dataframe.KindTime {
				col = dataframe.NewTimeColumn(name, vals, valid)
			} else {
				col = dataframe.NewIntColumn(name, vals, valid)
			}
		case dataframe.KindFloat:
			vals := make([]float64, n)
			for i, row := range req.Rows {
				v, ok := row[name]
				if !ok || v == nil {
					continue
				}
				num, ok := v.(json.Number)
				if !ok {
					return nil, fmt.Errorf("%w: row %d column %q: expected number, got %T", ErrBadRequest, i, name, v)
				}
				fv, err := num.Float64()
				if err != nil {
					return nil, fmt.Errorf("%w: row %d column %q: %v is not a number", ErrBadRequest, i, name, num)
				}
				vals[i], valid[i] = fv, true
			}
			col = dataframe.NewFloatColumn(name, vals, valid)
		case dataframe.KindString:
			vals := make([]string, n)
			for i, row := range req.Rows {
				v, ok := row[name]
				if !ok || v == nil {
					continue
				}
				sv, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("%w: row %d column %q: expected string, got %T", ErrBadRequest, i, name, v)
				}
				vals[i], valid[i] = sv, true
			}
			col = dataframe.NewStringColumn(name, vals, valid)
		case dataframe.KindBool:
			vals := make([]bool, n)
			for i, row := range req.Rows {
				v, ok := row[name]
				if !ok || v == nil {
					continue
				}
				bv, ok := v.(bool)
				if !ok {
					return nil, fmt.Errorf("%w: row %d column %q: expected bool, got %T", ErrBadRequest, i, name, v)
				}
				vals[i], valid[i] = bv, true
			}
			col = dataframe.NewBoolColumn(name, vals, valid)
		default:
			return nil, fmt.Errorf("serve: column %q has unsupported kind %s", name, kind)
		}
		cols = append(cols, col)
	}
	return dataframe.NewTable(cols...)
}

// appendResponse is the wire shape of an append result.
type appendResponse struct {
	Plan      string `json:"plan"`
	Appended  int    `json:"appended"`
	Epoch     uint64 `json:"epoch"`
	TableRows int    `json:"table_rows"`
}

// transformResponse is the wire shape of a transform result: one object per
// request row mapping feature name to value, null on join miss / NULL
// aggregate. Coalesced reports whether the rows were served from a fused
// multi-request pass.
type transformResponse struct {
	Plan      string                `json:"plan"`
	Version   int64                 `json:"version"`
	Features  []string              `json:"features"`
	Rows      []map[string]*float64 `json:"rows"`
	Coalesced bool                  `json:"coalesced"`
}

// encodeMatrix shapes a waiter's FeatureMatrix slice into response rows.
func encodeMatrix(m *query.FeatureMatrix, features []string) []map[string]*float64 {
	rows := make([]map[string]*float64, m.NumRows())
	for i := range rows {
		rows[i] = make(map[string]*float64, len(features))
	}
	for j, name := range features {
		vals, valid := m.Col(j)
		for i := range rows {
			if valid[i] {
				v := vals[i]
				rows[i][name] = &v
			} else {
				rows[i][name] = nil
			}
		}
	}
	return rows
}
