package serve

import "errors"

// Sentinel errors of the serving path. Handlers map them onto HTTP statuses
// (see statusOf); library callers branch with errors.Is.
var (
	// ErrUnknownPlan reports a request against a plan name the server does
	// not hold. 404.
	ErrUnknownPlan = errors.New("serve: unknown plan")
	// ErrBadRequest reports a transform request body the codec cannot turn
	// into a typed key table: not JSON, no rows, a missing or null key, or a
	// value of the wrong kind for its key column. 400.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrOverloaded reports an admission-control rejection: accepting the
	// request's rows would push the plan past its bounded in-flight row
	// budget. The typed 429 — clients should back off and retry.
	ErrOverloaded = errors.New("serve: plan over in-flight row budget")
	// ErrDraining reports a request that arrived after shutdown began. 503.
	ErrDraining = errors.New("serve: server is draining")
)
