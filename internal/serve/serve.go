// Package serve is the online half the paper never reaches: a long-lived
// feature-serving layer over fitted FeatAug plans. A Server holds one warm
// transformer per named plan — each wired to the process-level join cache
// and scan scheduler, so the engine state the fit warmed stays hot — and
// serves entity feature lookups over HTTP. The core primitive is request
// coalescing (coalesce.go): the engine underneath is batch-shaped, so
// concurrent requests against one plan are micro-batched into single fused
// AugmentMatrix passes instead of paying one relevant-table pass each.
// Around it: bounded-in-flight admission control (typed 429), atomic plan
// hot-swap with drain-on-old semantics, a stats endpoint merging serve-side
// counters with engine ExecutorStats, and graceful drain for shutdown.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataframe"
	"repro/internal/feataug"
	"repro/internal/query"
)

// Transformer is the serving-side view of a bound feature plan. Both
// feataug.Transformer and feataug.MultiTransformer satisfy it.
type Transformer interface {
	// Matrix materialises the plan's features for d as one columnar matrix,
	// columns in FeatureNames order.
	Matrix(ctx context.Context, d *dataframe.Table) (*query.FeatureMatrix, error)
	// FeatureNames lists the output feature columns, in matrix order.
	FeatureNames() []string
	// RequiredKeys lists the join-key columns request rows must carry.
	RequiredKeys() []string
	// Stats snapshots the transformer's executor counters.
	Stats() query.ExecutorStats
}

// Config tunes a Server. Zero values select serving defaults.
type Config struct {
	// CoalesceWindow bounds how long the first request of a micro-batch
	// waits for company. 0 selects DefaultCoalesceWindow; negative disables
	// coalescing entirely (every request runs its own pass — the baseline
	// the serving benchmarks compare against).
	CoalesceWindow time.Duration
	// MaxBatchRows flushes a pending micro-batch early once it holds this
	// many rows. 0 selects DefaultMaxBatchRows.
	MaxBatchRows int
	// MaxInflightRows bounds the rows a plan may hold in flight (admitted
	// but unanswered); requests beyond it are rejected with ErrOverloaded.
	// 0 selects DefaultMaxInflightRows.
	MaxInflightRows int
	// Logf, when non-nil, receives serving log lines. Printf-style.
	Logf func(format string, args ...interface{})
}

// Serving defaults: a 2ms window is invisible next to network latency but
// wide enough to fuse a concurrent burst; 256 rows keeps a fused pass's
// scatter output comfortably cache-sized; 4096 in-flight rows bounds memory
// under overload.
const (
	DefaultCoalesceWindow  = 2 * time.Millisecond
	DefaultMaxBatchRows    = 256
	DefaultMaxInflightRows = 4096
)

func (c Config) normalized() Config {
	if c.CoalesceWindow == 0 {
		c.CoalesceWindow = DefaultCoalesceWindow
	}
	if c.MaxBatchRows <= 0 {
		c.MaxBatchRows = DefaultMaxBatchRows
	}
	if c.MaxInflightRows <= 0 {
		c.MaxInflightRows = DefaultMaxInflightRows
	}
	return c
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// PlanBinding names the relevant table(s) a plan binds against. Exactly one
// field is set: Relevant for single-table FeaturePlans, Sources for
// MultiFeaturePlans. The binding is fixed per plan name at AddPlan time and
// reused by every hot-swap of that name — a swap replaces the plan, not the
// data it serves from.
type PlanBinding struct {
	Relevant *dataframe.Table
	Sources  map[string]*dataframe.Table
}

// planState is the swappable half of a served plan: one bound transformer
// plus everything derived from it. Hot-swap builds a fresh state and swaps
// the pointer; requests that loaded the old state drain on it.
type planState struct {
	version  int64
	tr       Transformer
	co       *coalescer
	spec     []keyCol
	features []string
	keys     []string
}

// planHandle is the per-name constant half: binding, counters and the state
// pointer. Counters survive swaps.
type planHandle struct {
	name     string
	binding  PlanBinding
	state    atomic.Pointer[planState]
	counters planCounters
	inflight atomic.Int64
	versions atomic.Int64
	swaps    atomic.Int64
}

// Server serves fitted feature plans over HTTP. Construct with NewServer,
// add plans with AddPlan, expose Handler on an http.Server, and call Drain
// on shutdown.
type Server struct {
	cfg      Config
	mu       sync.Mutex
	plans    map[string]*planHandle
	wg       sync.WaitGroup
	draining atomic.Bool
}

// NewServer builds an empty server.
func NewServer(cfg Config) *Server {
	return &Server{cfg: cfg.normalized(), plans: map[string]*planHandle{}}
}

// AddPlan decodes planJSON (a FeaturePlan if binding.Relevant is set, a
// MultiFeaturePlan if binding.Sources is) and starts serving it under name.
// The bound executors are wired to the process-level JoinCache and
// ScanScheduler, so every plan over the same relevant tables shares warm
// scan state. Fails with feataug's typed errors on bad plans (ErrPlanCorrupt,
// ErrPlanVersion, ErrSchemaMismatch, ...).
func (s *Server) AddPlan(name string, planJSON []byte, binding PlanBinding) error {
	if name == "" {
		return fmt.Errorf("serve: empty plan name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.plans[name]; ok {
		return fmt.Errorf("serve: plan %q already added (hot-swap via POST /v1/plans/%s)", name, name)
	}
	h := &planHandle{name: name, binding: binding}
	st, err := s.buildState(h, planJSON)
	if err != nil {
		return err
	}
	h.state.Store(st)
	s.plans[name] = h
	s.cfg.logf("serve: plan %q v%d: %d features over keys %v", name, st.version, len(st.features), st.keys)
	return nil
}

// buildState binds plan bytes against the handle's tables into a fresh
// planState with the next version number. It never touches the current
// state: a bind failure leaves whatever is serving untouched.
func (s *Server) buildState(h *planHandle, planJSON []byte) (*planState, error) {
	tr, tables, err := bindPlan(planJSON, h.binding)
	if err != nil {
		return nil, err
	}
	keys := tr.RequiredKeys()
	spec, err := requestSchema(keys, tables...)
	if err != nil {
		return nil, err
	}
	st := &planState{
		version:  h.versions.Add(1),
		tr:       tr,
		spec:     spec,
		features: tr.FeatureNames(),
		keys:     keys,
	}
	st.co = newCoalescer(tr, s.cfg.CoalesceWindow, s.cfg.MaxBatchRows, func(waiters, rows int) {
		if waiters > 1 {
			h.counters.coalescedBatches.Add(1)
			h.counters.coalescedRows.Add(int64(rows))
		} else {
			h.counters.soloBatches.Add(1)
		}
	})
	return st, nil
}

// bindPlan decodes and binds plan bytes under a binding, returning the
// transformer and the tables key kinds resolve against. Every executor is
// wired to the process-level caches: a serving process holds plans for the
// long haul, so scan state shared across plans (and with any in-process fit)
// is exactly what we want.
func bindPlan(planJSON []byte, binding PlanBinding) (Transformer, []*dataframe.Table, error) {
	procOpts := []query.ExecutorOption{
		query.WithJoinCache(query.ProcessJoinCache()),
		query.WithScanScheduler(query.ProcessScanScheduler()),
	}
	if binding.Sources != nil {
		mp, err := feataug.DecodeMultiPlan(planJSON)
		if err != nil {
			return nil, nil, err
		}
		tr, err := mp.Transformer(binding.Sources, procOpts...)
		if err != nil {
			return nil, nil, err
		}
		tables := make([]*dataframe.Table, 0, len(mp.Sources))
		for _, src := range mp.Sources {
			tables = append(tables, binding.Sources[src.Name])
		}
		return tr, encodeDicts(tables), nil
	}
	if binding.Relevant == nil {
		return nil, nil, fmt.Errorf("serve: binding has neither Relevant nor Sources")
	}
	p, err := feataug.DecodePlan(planJSON)
	if err != nil {
		return nil, nil, err
	}
	tr, err := p.Transformer(binding.Relevant, procOpts...)
	if err != nil {
		return nil, nil, err
	}
	return tr, encodeDicts([]*dataframe.Table{binding.Relevant}), nil
}

// encodeDicts eagerly dictionary-encodes the bound tables' string columns
// (dataframe.Table.EncodeDicts), so a freshly added or swapped plan pays its
// encode passes at bind time instead of on the first serving request.
func encodeDicts(tables []*dataframe.Table) []*dataframe.Table {
	for _, t := range tables {
		t.EncodeDicts()
	}
	return tables
}

// Swap hot-swaps plan name to new plan bytes: the fresh state binds first,
// then replaces the serving state atomically, and the outgoing state's
// pending micro-batch is force-flushed so in-flight waiters drain on the old
// transformer. On any bind error the old state keeps serving untouched.
func (s *Server) Swap(name string, planJSON []byte) (version int64, err error) {
	s.mu.Lock()
	h, ok := s.plans[name]
	s.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownPlan, name)
	}
	st, err := s.buildState(h, planJSON)
	if err != nil {
		return 0, err
	}
	old := h.state.Swap(st)
	h.swaps.Add(1)
	old.co.flush()
	s.cfg.logf("serve: plan %q swapped v%d -> v%d", name, old.version, st.version)
	return st.version, nil
}

// Transform serves one typed request table against plan name — the library
// entry point the HTTP handler wraps. It admits the request against the
// plan's in-flight row budget, enqueues it into the coalescer, and returns
// the scattered feature matrix (columns in the plan's FeatureNames order)
// with whether the rows rode a fused multi-request pass.
func (s *Server) Transform(ctx context.Context, name string, tbl *dataframe.Table) (*query.FeatureMatrix, bool, error) {
	s.mu.Lock()
	h, ok := s.plans[name]
	s.mu.Unlock()
	if !ok {
		return nil, false, fmt.Errorf("%w: %q", ErrUnknownPlan, name)
	}
	m, _, coalesced, err := s.transformOn(ctx, h, h.state.Load(), tbl)
	return m, coalesced, err
}

// Append absorbs a batch of relevant-table rows into plan name's bound table
// — the streaming ingest path (PR 9). The append runs through the
// process-level scan scheduler's epoch fence, so it waits out in-flight
// transform passes of every plan bound to the same table, and those plans'
// caches advance incrementally over the delta rows on their next request: no
// rebind, no swap, no full recompute. Single-table plans only (a multi-source
// plan doesn't say which source the rows target). Returns the table's
// post-append epoch and total row count.
func (s *Server) Append(name string, batch *dataframe.Table) (epoch uint64, tableRows int, err error) {
	s.mu.Lock()
	h, ok := s.plans[name]
	s.mu.Unlock()
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownPlan, name)
	}
	if s.draining.Load() {
		return 0, 0, ErrDraining
	}
	if h.binding.Relevant == nil {
		return 0, 0, fmt.Errorf("%w: plan %q binds multiple sources; append serves single-table plans", ErrBadRequest, name)
	}
	epoch, tableRows, err = query.ProcessScanScheduler().AppendStats(h.binding.Relevant, batch)
	if err != nil {
		return epoch, tableRows, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	h.counters.appends.Add(1)
	h.counters.appendedRows.Add(int64(batch.NumRows()))
	s.cfg.logf("serve: plan %q absorbed %d rows (epoch %d, %d total)", name, batch.NumRows(), epoch, tableRows)
	return epoch, tableRows, nil
}

// Stats snapshots every plan's serve-side and executor counters, name order.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	handles := make([]*planHandle, 0, len(s.plans))
	for _, h := range s.plans {
		handles = append(handles, h)
	}
	s.mu.Unlock()
	sort.Slice(handles, func(i, j int) bool { return handles[i].name < handles[j].name })
	out := Stats{Plans: make([]PlanStats, len(handles))}
	for i, h := range handles {
		out.Plans[i] = h.snapshot()
	}
	return out
}

// Drain stops admitting requests, force-flushes every plan's pending
// micro-batch, and waits for in-flight requests to finish. Call it after
// http.Server.Shutdown has stopped new connections.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.mu.Lock()
	handles := make([]*planHandle, 0, len(s.plans))
	for _, h := range s.plans {
		handles = append(handles, h)
	}
	s.mu.Unlock()
	for _, h := range handles {
		h.state.Load().co.flush()
	}
	s.wg.Wait()
}

// Handler returns the server's HTTP API:
//
//	GET  /v1/healthz                    — liveness ("ok" / "draining")
//	GET  /v1/plans                      — served plans with version/keys/features
//	POST /v1/plans/{name}/transform     — entity feature lookup (rows of join keys)
//	POST /v1/plans/{name}/append        — absorb relevant-table rows (full schema, nulls allowed)
//	POST /v1/plans/{name}               — hot-swap the named plan to the posted plan JSON
//	GET  /v1/stats                      — serve counters merged with executor stats
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/plans", s.handlePlans)
	mux.HandleFunc("POST /v1/plans/{name}/transform", s.handleTransform)
	mux.HandleFunc("POST /v1/plans/{name}/append", s.handleAppend)
	mux.HandleFunc("POST /v1/plans/{name}", s.handleSwap)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	type planInfo struct {
		Plan     string   `json:"plan"`
		Version  int64    `json:"version"`
		Keys     []string `json:"keys"`
		Features []string `json:"features"`
	}
	s.mu.Lock()
	infos := make([]planInfo, 0, len(s.plans))
	for _, h := range s.plans {
		st := h.state.Load()
		infos = append(infos, planInfo{Plan: h.name, Version: st.version, Keys: st.keys, Features: st.features})
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Plan < infos[j].Plan })
	writeJSON(w, http.StatusOK, map[string]interface{}{"plans": infos})
}

func (s *Server) handleTransform(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	h, ok := s.plans[name]
	s.mu.Unlock()
	if !ok {
		writeError(w, fmt.Errorf("%w: %q", ErrUnknownPlan, name))
		return
	}
	// The state loaded here types the request rows AND serves them: a swap
	// landing mid-request drains this request on the state it decoded under.
	st := h.state.Load()
	tbl, err := decodeRows(r.Body, st.spec)
	if err != nil {
		writeError(w, err)
		return
	}
	m, served, coalesced, err := s.transformOn(r.Context(), h, st, tbl)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, transformResponse{
		Plan:      name,
		Version:   served.version,
		Features:  served.features,
		Rows:      encodeMatrix(m, served.features),
		Coalesced: coalesced,
	})
}

// transformOn is Transform with the handle and state already resolved — the
// HTTP path uses it so decode and serve agree on one state.
func (s *Server) transformOn(ctx context.Context, h *planHandle, st *planState, tbl *dataframe.Table) (*query.FeatureMatrix, *planState, bool, error) {
	if s.draining.Load() {
		return nil, nil, false, ErrDraining
	}
	rows := int64(tbl.NumRows())
	if h.inflight.Add(rows) > int64(s.cfg.MaxInflightRows) {
		h.inflight.Add(-rows)
		h.counters.rejected.Add(1)
		return nil, nil, false, fmt.Errorf("%w: %q (max %d in-flight rows)", ErrOverloaded, h.name, s.cfg.MaxInflightRows)
	}
	defer h.inflight.Add(-rows)
	s.wg.Add(1)
	defer s.wg.Done()
	res := st.co.do(ctx, tbl)
	if res.err != nil {
		return nil, nil, false, res.err
	}
	h.counters.requests.Add(1)
	h.counters.rows.Add(rows)
	return res.m, st, res.coalesced, nil
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	h, ok := s.plans[name]
	s.mu.Unlock()
	if !ok {
		writeError(w, fmt.Errorf("%w: %q", ErrUnknownPlan, name))
		return
	}
	if h.binding.Relevant == nil {
		writeError(w, fmt.Errorf("%w: plan %q binds multiple sources; append serves single-table plans", ErrBadRequest, name))
		return
	}
	batch, err := decodeAppendRows(r.Body, h.binding.Relevant)
	if err != nil {
		writeError(w, err)
		return
	}
	epoch, rows, err := s.Append(name, batch)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, appendResponse{
		Plan:      name,
		Appended:  batch.NumRows(),
		Epoch:     epoch,
		TableRows: rows,
	})
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading plan body: %v", ErrBadRequest, err))
		return
	}
	version, err := s.Swap(name, body)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"plan": name, "version": version})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// statusOf maps serving and plan errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrUnknownPlan):
		return http.StatusNotFound
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, feataug.ErrPlanCorrupt),
		errors.Is(err, feataug.ErrPlanVersion),
		errors.Is(err, feataug.ErrEmptyPlan):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, feataug.ErrSchemaMismatch),
		errors.Is(err, feataug.ErrKeyMismatch),
		errors.Is(err, feataug.ErrMissingSource):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
