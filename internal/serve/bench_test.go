package serve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// benchServer stands up an HTTP server over a 200k-row relevant table with a
// 5-query plan — big enough that one AugmentMatrix pass dominates request
// cost, the regime coalescing is built for.
func benchServer(b *testing.B, window time.Duration) (*Server, *httptest.Server) {
	rel := testRelevant(b, 200_000, 5_000, 42)
	srv := NewServer(Config{
		CoalesceWindow:  window,
		MaxBatchRows:    4096,
		MaxInflightRows: 1 << 20,
	})
	if err := srv.AddPlan("bench", testPlanJSON(b, 5), PlanBinding{Relevant: rel}); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	// One warm-up request builds the executor's group indexes and predicate
	// bitmaps, so the benchmark measures the steady serving state.
	if _, _, err := srv.Transform(context.Background(), "bench", keyTable(b, []int64{1})); err != nil {
		b.Fatal(err)
	}
	return srv, ts
}

// benchLoad drives 16 closed-loop HTTP clients issuing 4-row requests until
// b.N requests have been served, reporting throughput and latency
// percentiles. The coalesced and solo variants differ only in the window, so
// req/s ratio between them is the coalescing speedup at 16 clients.
func benchLoad(b *testing.B, srv *Server, ts *httptest.Server) {
	const clients = 16
	reqs := b.N/clients + 1
	b.ResetTimer()
	res, err := RunLoadgen(context.Background(), LoadgenConfig{
		URL:            ts.URL,
		Plan:           "bench",
		Clients:        clients,
		Requests:       reqs,
		RowsPerRequest: 4,
		NewRow: func(client, seq, row int) map[string]interface{} {
			return map[string]interface{}{"uid": (client*31 + seq*7 + row) % 5_000}
		},
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Failed > 0 || res.Rejected > 0 {
		b.Fatalf("loadgen: %d failed, %d rejected", res.Failed, res.Rejected)
	}
	b.ReportMetric(res.ThroughputRPS, "req/s")
	b.ReportMetric(res.P50MS, "p50_ms")
	b.ReportMetric(res.P99MS, "p99_ms")
	st := srv.Stats().Plans[0]
	if total := st.SoloBatches + st.CoalescedBatches; total > 0 {
		b.ReportMetric(float64(st.Requests)/float64(total), "req/pass")
	}
}

// BenchmarkServeCoalesced16 is the serving configuration: 16 concurrent
// clients micro-batched through the default 2ms window.
func BenchmarkServeCoalesced16(b *testing.B) {
	srv, ts := benchServer(b, DefaultCoalesceWindow)
	benchLoad(b, srv, ts)
}

// BenchmarkServeSolo16 is the one-request-per-pass baseline: same 16
// clients, coalescing disabled, every request pays its own fused pass.
func BenchmarkServeSolo16(b *testing.B) {
	srv, ts := benchServer(b, -1)
	benchLoad(b, srv, ts)
}
