package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadgenConfig drives RunLoadgen against a running feataugd (or any
// Server.Handler) over HTTP.
type LoadgenConfig struct {
	// URL is the server base URL (e.g. http://127.0.0.1:8080).
	URL string
	// Plan is the plan name to hit.
	Plan string
	// Clients is the number of concurrent clients (closed-loop: each client
	// has one request outstanding at a time).
	Clients int
	// Requests is the number of requests each client issues.
	Requests int
	// RowsPerRequest is the number of entity rows per request body.
	RowsPerRequest int
	// NewRow produces the key map of one request row. It must be safe for
	// concurrent calls.
	NewRow func(client, seq, row int) map[string]interface{}
}

// LoadgenResult summarises one load-generation run.
type LoadgenResult struct {
	Clients        int     `json:"clients"`
	Requests       int     `json:"requests"`
	Rows           int     `json:"rows"`
	Rejected       int     `json:"rejected"`
	Failed         int     `json:"failed"`
	DurationMS     float64 `json:"duration_ms"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	ThroughputRows float64 `json:"throughput_rows_ps"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
}

// String renders the result the way the -loadgen CLI prints it.
func (r *LoadgenResult) String() string {
	return fmt.Sprintf("loadgen: %d clients × %d reqs (%d rows): %.0f req/s, %.0f rows/s, p50 %.3fms, p99 %.3fms, %d rejected, %d failed",
		r.Clients, r.Requests/max(r.Clients, 1), r.Rows, r.ThroughputRPS, r.ThroughputRows, r.P50MS, r.P99MS, r.Rejected, r.Failed)
}

// RunLoadgen runs a closed-loop load test: Clients goroutines each issue
// Requests transform calls back to back and every successful request's
// latency is recorded. 429s count as Rejected (the admission control doing
// its job under saturation), other non-200s as Failed; neither contributes a
// latency sample.
func RunLoadgen(ctx context.Context, cfg LoadgenConfig) (*LoadgenResult, error) {
	if cfg.Clients <= 0 || cfg.Requests <= 0 || cfg.RowsPerRequest <= 0 {
		return nil, fmt.Errorf("serve: loadgen needs positive clients, requests and rows per request")
	}
	if cfg.NewRow == nil {
		return nil, fmt.Errorf("serve: loadgen needs a NewRow function")
	}
	url := fmt.Sprintf("%s/v1/plans/%s/transform", cfg.URL, cfg.Plan)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.Clients}}

	type clientTally struct {
		lat                []time.Duration
		rejected, failed   int
		requests, rowsSent int
		err                error
	}
	tallies := make([]clientTally, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t := &tallies[c]
			t.lat = make([]time.Duration, 0, cfg.Requests)
			for seq := 0; seq < cfg.Requests; seq++ {
				if ctx.Err() != nil {
					t.err = ctx.Err()
					return
				}
				rows := make([]map[string]interface{}, cfg.RowsPerRequest)
				for i := range rows {
					rows[i] = cfg.NewRow(c, seq, i)
				}
				body, err := json.Marshal(map[string]interface{}{"rows": rows})
				if err != nil {
					t.err = err
					return
				}
				t.requests++
				t.rowsSent += cfg.RowsPerRequest
				reqStart := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
				if err != nil {
					t.err = err
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					t.failed++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					t.lat = append(t.lat, time.Since(reqStart))
				case resp.StatusCode == http.StatusTooManyRequests:
					t.rejected++
				default:
					t.failed++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadgenResult{Clients: cfg.Clients, DurationMS: float64(elapsed.Nanoseconds()) / 1e6}
	var lat []time.Duration
	for i := range tallies {
		t := &tallies[i]
		if t.err != nil {
			return nil, t.err
		}
		res.Requests += t.requests
		res.Rows += t.rowsSent
		res.Rejected += t.rejected
		res.Failed += t.failed
		lat = append(lat, t.lat...)
	}
	secs := elapsed.Seconds()
	if secs > 0 {
		ok := res.Requests - res.Rejected - res.Failed
		res.ThroughputRPS = float64(ok) / secs
		res.ThroughputRows = float64(ok*cfg.RowsPerRequest) / secs
	}
	res.P50MS = percentileMS(lat, 0.50)
	res.P99MS = percentileMS(lat, 0.99)
	return res, nil
}

// percentileMS returns the p-quantile of lat in milliseconds (nearest-rank).
func percentileMS(lat []time.Duration, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := int(p * float64(len(lat)-1))
	return float64(lat[idx].Nanoseconds()) / 1e6
}
