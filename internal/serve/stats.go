package serve

import (
	"sync/atomic"

	"repro/internal/query"
)

// planCounters is the serve-side counter block of one plan handle. Counters
// live on the handle, not the swappable state, so a hot-swap never resets
// them; executor counters are read from whichever transformer currently
// serves (handles wire every bound executor to the same process-level
// caches, so the engine-side story stays coherent across swaps).
type planCounters struct {
	requests         atomic.Int64
	rows             atomic.Int64
	soloBatches      atomic.Int64
	coalescedBatches atomic.Int64
	coalescedRows    atomic.Int64
	rejected         atomic.Int64
	appends          atomic.Int64
	appendedRows     atomic.Int64
}

// PlanStats is the /v1/stats snapshot of one served plan: serve-side
// counters merged with the current transformer's executor counters.
type PlanStats struct {
	Plan    string `json:"plan"`
	Version int64  `json:"version"`
	// Requests and Rows count admitted transform requests and their rows.
	Requests int64 `json:"requests"`
	Rows     int64 `json:"rows"`
	// SoloBatches counts AugmentMatrix passes that served one request;
	// CoalescedBatches counts passes that fused two or more, covering
	// CoalescedRows rows in total.
	SoloBatches      int64 `json:"solo_batches"`
	CoalescedBatches int64 `json:"coalesced_batches"`
	CoalescedRows    int64 `json:"coalesced_rows"`
	// RejectedRequests counts admission-control rejections (429s).
	RejectedRequests int64 `json:"rejected_requests"`
	// SwapCount counts successful hot-swaps since boot.
	SwapCount int64 `json:"swap_count"`
	// Appends counts absorbed append batches, totalling AppendedRows rows;
	// TableEpoch is the bound relevant table's current append epoch (0 for
	// multi-source plans, whose tables stay append-free).
	Appends      int64  `json:"appends"`
	AppendedRows int64  `json:"appended_rows"`
	TableEpoch   uint64 `json:"table_epoch"`
	// TableBytes is the estimated resident footprint of the bound relevant
	// table(s) — summed across sources for multi-source plans. Compact
	// string columns (code-backed, PR 10) show up here as the drop from
	// ~16+len(s) bytes per cell to one narrow code per cell.
	TableBytes int64 `json:"table_bytes"`
	// Executor is the current transformer's engine-side counter snapshot
	// (for multi-table plans, merged across the per-source executors).
	Executor query.ExecutorStats `json:"executor"`
}

// Stats is the full /v1/stats snapshot: one PlanStats per plan, name order.
type Stats struct {
	Plans []PlanStats `json:"plans"`
}

func (h *planHandle) snapshot() PlanStats {
	st := h.state.Load()
	var tableEpoch uint64
	var tableBytes int64
	if h.binding.Relevant != nil {
		tableEpoch = h.binding.Relevant.Epoch()
		tableBytes, _ = h.binding.Relevant.MemBytes()
	}
	for _, t := range h.binding.Sources {
		b, _ := t.MemBytes()
		tableBytes += b
	}
	return PlanStats{
		Plan:             h.name,
		Version:          st.version,
		Requests:         h.counters.requests.Load(),
		Rows:             h.counters.rows.Load(),
		SoloBatches:      h.counters.soloBatches.Load(),
		CoalescedBatches: h.counters.coalescedBatches.Load(),
		CoalescedRows:    h.counters.coalescedRows.Load(),
		RejectedRequests: h.counters.rejected.Load(),
		SwapCount:        h.swaps.Load(),
		Appends:          h.counters.appends.Load(),
		AppendedRows:     h.counters.appendedRows.Load(),
		TableEpoch:       tableEpoch,
		TableBytes:       tableBytes,
		Executor:         st.tr.Stats(),
	}
}
