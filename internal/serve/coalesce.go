package serve

import (
	"context"
	"sync"
	"time"

	"repro/internal/dataframe"
	"repro/internal/query"
)

// coalescer micro-batches concurrent transform requests against one plan
// into single fused AugmentMatrix passes. The engine is batch-shaped: a pass
// pays the relevant-table scans and per-group projection tables once however
// many request rows ride on it, so fusing k small requests into one pass
// costs roughly one request's engine work instead of k. Requests accumulate
// until the window timer fires or the pending batch reaches maxRows,
// whichever comes first; the batch runs as one pass and each waiter gets its
// row range scattered back. Results are bit-identical to a solo pass — each
// row's features depend only on its join keys against the relevant table,
// never on the other rows sharing the pass (the differential test enforces
// this).
type coalescer struct {
	tr      Transformer
	window  time.Duration
	maxRows int
	// onBatch receives (waiters, rows) after each flush for stats.
	onBatch func(waiters, rows int)

	mu      sync.Mutex
	pending []*waiter
	rows    int
	gen     uint64 // guards stale window timers; bumped at every flush
}

// waiter is one enqueued request: its typed key table and the channel its
// scattered result arrives on (buffered, so a flush never blocks on a waiter
// that gave up).
type waiter struct {
	tbl  *dataframe.Table
	rows int
	ch   chan waitResult
}

type waitResult struct {
	m         *query.FeatureMatrix
	coalesced bool
	err       error
}

func newCoalescer(tr Transformer, window time.Duration, maxRows int, onBatch func(waiters, rows int)) *coalescer {
	return &coalescer{tr: tr, window: window, maxRows: maxRows, onBatch: onBatch}
}

// do serves one request table: solo when coalescing is disabled (window < 0),
// otherwise enqueued into the pending micro-batch. It blocks until the
// result is scattered back or ctx is cancelled; on cancellation the batch
// still runs for its other waiters and this waiter's slice is dropped.
func (c *coalescer) do(ctx context.Context, tbl *dataframe.Table) waitResult {
	if c.window < 0 {
		m, err := c.tr.Matrix(ctx, tbl)
		if err == nil {
			c.onBatch(1, tbl.NumRows())
		}
		return waitResult{m: m, err: err}
	}
	w := &waiter{tbl: tbl, rows: tbl.NumRows(), ch: make(chan waitResult, 1)}
	c.mu.Lock()
	c.pending = append(c.pending, w)
	c.rows += w.rows
	if c.rows >= c.maxRows {
		// Batch is full: flush inline on this request's goroutine.
		batch, rows := c.takeLocked()
		c.mu.Unlock()
		c.run(batch, rows)
	} else {
		if len(c.pending) == 1 {
			// First waiter opens the window.
			gen := c.gen
			time.AfterFunc(c.window, func() { c.flushGen(gen) })
		}
		c.mu.Unlock()
	}
	select {
	case res := <-w.ch:
		return res
	case <-ctx.Done():
		return waitResult{err: ctx.Err()}
	}
}

// takeLocked claims the pending batch. Callers hold c.mu.
func (c *coalescer) takeLocked() ([]*waiter, int) {
	batch, rows := c.pending, c.rows
	c.pending, c.rows = nil, 0
	c.gen++
	return batch, rows
}

// flushGen is the window-timer path: it flushes only if the batch the timer
// was opened for is still pending (gen matches), so a timer racing a
// maxRows flush never cuts the next batch's window short.
func (c *coalescer) flushGen(gen uint64) {
	c.mu.Lock()
	if c.gen != gen || len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	batch, rows := c.takeLocked()
	c.mu.Unlock()
	c.run(batch, rows)
}

// flush force-runs whatever is pending — the hot-swap and drain paths use it
// so waiters parked on an outgoing plan state complete on that state's
// transformer without waiting out the window.
func (c *coalescer) flush() {
	c.mu.Lock()
	if len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	batch, rows := c.takeLocked()
	c.mu.Unlock()
	c.run(batch, rows)
}

// run executes one batch as a single fused pass and scatters row ranges back
// to the waiters. The pass runs under context.Background(): a batch serves
// many requests, so one caller's cancellation must not abort the others
// (cancelled callers stop waiting in do; their rows compute harmlessly).
func (c *coalescer) run(batch []*waiter, rows int) {
	var d *dataframe.Table
	var err error
	if len(batch) == 1 {
		d = batch[0].tbl
	} else {
		tbls := make([]*dataframe.Table, len(batch))
		for i, w := range batch {
			tbls[i] = w.tbl
		}
		d, err = dataframe.Concat(tbls...)
	}
	var m *query.FeatureMatrix
	if err == nil {
		m, err = c.tr.Matrix(context.Background(), d)
	}
	if err != nil {
		for _, w := range batch {
			w.ch <- waitResult{err: err}
		}
		return
	}
	coalesced := len(batch) > 1
	if len(batch) == 1 {
		batch[0].ch <- waitResult{m: m}
	} else {
		lo := 0
		for _, w := range batch {
			hi := lo + w.rows
			w.ch <- waitResult{m: m.RowSlice(lo, hi), coalesced: coalesced}
			lo = hi
		}
	}
	c.onBatch(len(batch), rows)
}
