// Package agg implements the fifteen aggregation functions the paper's query
// templates use (Table II): SUM, MIN, MAX, COUNT, AVG, COUNT_DISTINCT, VAR,
// VAR_SAMPLE, STD, STD_SAMPLE, ENTROPY, KURTOSIS, MODE, MAD and MEDIAN.
//
// Every function consumes the non-null numeric values of one group (plus the
// total group size n, which COUNT needs) and returns a value and an ok flag;
// ok == false maps to SQL NULL, e.g. AVG over an empty group.
package agg

import (
	"fmt"
	"math"
	"sort"
)

// Func identifies one aggregation function.
type Func int

// The aggregation function set, matching the paper's Table II list.
const (
	Sum Func = iota
	Min
	Max
	Count
	Avg
	CountDistinct
	Var
	VarSample
	Std
	StdSample
	Entropy
	Kurtosis
	Mode
	MAD
	Median
	numFuncs // sentinel
)

// All returns the full function set in declaration order.
func All() []Func {
	out := make([]Func, numFuncs)
	for i := range out {
		out[i] = Func(i)
	}
	return out
}

// Basic returns the five-function subset Featuretools demos typically use;
// handy for small examples.
func Basic() []Func { return []Func{Sum, Min, Max, Count, Avg} }

var names = [...]string{
	"SUM", "MIN", "MAX", "COUNT", "AVG", "COUNT_DISTINCT",
	"VAR", "VAR_SAMPLE", "STD", "STD_SAMPLE", "ENTROPY",
	"KURTOSIS", "MODE", "MAD", "MEDIAN",
}

// String returns the SQL-style upper-case name.
func (f Func) String() string {
	if f < 0 || int(f) >= len(names) {
		return fmt.Sprintf("Func(%d)", int(f))
	}
	return names[f]
}

// Parse maps a name (as produced by String) back to a Func.
func Parse(name string) (Func, error) {
	for i, n := range names {
		if n == name {
			return Func(i), nil
		}
	}
	return 0, fmt.Errorf("agg: unknown function %q", name)
}

// Apply evaluates f over the non-null values of one group. n is the total
// group size including nulls (only COUNT uses it). ok is false when the
// result is undefined (empty input, or e.g. sample variance of one value).
func (f Func) Apply(values []float64, n int) (float64, bool) {
	switch f {
	case Count:
		return float64(n), true
	case CountDistinct:
		return countDistinct(values), true
	}
	if len(values) == 0 {
		return 0, false
	}
	switch f {
	case Sum:
		return sum(values), true
	case Min:
		lo := values[0]
		for _, v := range values[1:] {
			if v < lo {
				lo = v
			}
		}
		return lo, true
	case Max:
		hi := values[0]
		for _, v := range values[1:] {
			if v > hi {
				hi = v
			}
		}
		return hi, true
	case Avg:
		return sum(values) / float64(len(values)), true
	case Var:
		return populationVar(values), true
	case VarSample:
		if len(values) < 2 {
			return 0, false
		}
		return populationVar(values) * float64(len(values)) / float64(len(values)-1), true
	case Std:
		return math.Sqrt(populationVar(values)), true
	case StdSample:
		if len(values) < 2 {
			return 0, false
		}
		return math.Sqrt(populationVar(values) * float64(len(values)) / float64(len(values)-1)), true
	case Entropy:
		return entropy(values), true
	case Kurtosis:
		return kurtosis(values)
	case Mode:
		return mode(values), true
	case MAD:
		return mad(values), true
	case Median:
		return median(values), true
	default:
		return 0, false
	}
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func populationVar(v []float64) float64 {
	m := sum(v) / float64(len(v))
	ss := 0.0
	for _, x := range v {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(v))
}

func countDistinct(v []float64) float64 {
	seen := make(map[float64]struct{}, len(v))
	for _, x := range v {
		seen[x] = struct{}{}
	}
	return float64(len(seen))
}

// entropy treats each distinct value as a category and returns the Shannon
// entropy (nats) of the empirical distribution, matching Featuretools'
// ENTROPY primitive. Accumulation follows sorted value order so the float
// sum is bit-for-bit reproducible across runs (map order would perturb it).
func entropy(v []float64) float64 {
	counts := make(map[float64]int, len(v))
	for _, x := range v {
		counts[x]++
	}
	keys := make([]float64, 0, len(counts))
	for x := range counts {
		keys = append(keys, x)
	}
	sort.Float64s(keys)
	n := float64(len(v))
	h := 0.0
	for _, x := range keys {
		p := float64(counts[x]) / n
		h -= p * math.Log(p)
	}
	return h
}

// kurtosis returns the excess kurtosis (Fisher). Undefined when the variance
// is zero or fewer than 4 observations (scipy convention with bias=True
// would allow n>=1, but a degenerate result is not useful as a feature).
func kurtosis(v []float64) (float64, bool) {
	if len(v) < 4 {
		return 0, false
	}
	m := sum(v) / float64(len(v))
	m2, m4 := 0.0, 0.0
	for _, x := range v {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	n := float64(len(v))
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0, false
	}
	return m4/(m2*m2) - 3, true
}

// mode returns the most frequent value; ties break toward the smaller value
// for determinism.
func mode(v []float64) float64 {
	counts := make(map[float64]int, len(v))
	for _, x := range v {
		counts[x]++
	}
	best, bestN := math.Inf(1), -1
	for x, c := range counts {
		if c > bestN || (c == bestN && x < best) {
			best, bestN = x, c
		}
	}
	return best
}

// median returns the middle value (mean of the two middle values for even
// lengths). The input is not modified.
func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mad returns the median absolute deviation from the median.
func mad(v []float64) float64 {
	med := median(v)
	dev := make([]float64, len(v))
	for i, x := range v {
		dev[i] = math.Abs(x - med)
	}
	return median(dev)
}

// StringApply evaluates the aggregations that are meaningful on categorical
// (string) inputs, encoding the result numerically: COUNT and COUNT_DISTINCT
// count values, ENTROPY is over category frequencies, and MODE returns the
// frequency of the modal category (a numeric image of the modal value that a
// downstream model can consume). ok is false for unsupported functions.
func (f Func) StringApply(values []string, n int) (float64, bool) {
	switch f {
	case Count:
		return float64(n), true
	case CountDistinct:
		seen := map[string]struct{}{}
		for _, v := range values {
			seen[v] = struct{}{}
		}
		return float64(len(seen)), true
	case Entropy:
		if len(values) == 0 {
			return 0, false
		}
		counts := map[string]int{}
		for _, v := range values {
			counts[v]++
		}
		keys := make([]string, 0, len(counts))
		for v := range counts {
			keys = append(keys, v)
		}
		sort.Strings(keys)
		total := float64(len(values))
		h := 0.0
		for _, v := range keys {
			p := float64(counts[v]) / total
			h -= p * math.Log(p)
		}
		return h, true
	case Mode:
		if len(values) == 0 {
			return 0, false
		}
		counts := map[string]int{}
		for _, v := range values {
			counts[v]++
		}
		best, bestN := "", -1
		for v, c := range counts {
			if c > bestN || (c == bestN && v < best) {
				best, bestN = v, c
			}
		}
		return float64(bestN), true
	default:
		return 0, false
	}
}

// SupportsStrings reports whether f has a meaningful StringApply.
func (f Func) SupportsStrings() bool {
	switch f {
	case Count, CountDistinct, Entropy, Mode:
		return true
	}
	return false
}
