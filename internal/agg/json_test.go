package agg

import (
	"encoding/json"
	"testing"
)

func TestFuncJSONRoundTrip(t *testing.T) {
	for _, f := range All() {
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		var got Func
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got != f {
			t.Fatalf("round trip %s -> %s", f, got)
		}
	}
}

func TestFuncJSONRejectsBadValues(t *testing.T) {
	if _, err := json.Marshal(Func(99)); err == nil {
		t.Fatal("unknown func should not marshal")
	}
	var f Func
	if err := json.Unmarshal([]byte(`"NOPE"`), &f); err == nil {
		t.Fatal("unknown name should not unmarshal")
	}
	if err := json.Unmarshal([]byte(`3`), &f); err == nil {
		t.Fatal("numeric form should not unmarshal")
	}
}
