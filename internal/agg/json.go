package agg

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON encodes the function as its SQL-style name ("SUM", "AVG", ...)
// so serialised query plans stay readable and stable if the enumeration is
// ever reordered.
func (f Func) MarshalJSON() ([]byte, error) {
	if f < 0 || int(f) >= len(names) {
		return nil, fmt.Errorf("agg: cannot marshal unknown function %d", int(f))
	}
	return json.Marshal(f.String())
}

// UnmarshalJSON decodes a function from its SQL-style name.
func (f *Func) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("agg: function must be a JSON string: %w", err)
	}
	parsed, err := Parse(name)
	if err != nil {
		return err
	}
	*f = parsed
	return nil
}
