package agg

import (
	"math"
	"testing"
	"testing/quick"
)

func apply(t *testing.T, f Func, v []float64) float64 {
	t.Helper()
	got, ok := f.Apply(v, len(v))
	if !ok {
		t.Fatalf("%s(%v) unexpectedly undefined", f, v)
	}
	return got
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAllAndNames(t *testing.T) {
	fns := All()
	if len(fns) != 15 {
		t.Fatalf("All() has %d funcs, paper lists 15", len(fns))
	}
	for _, f := range fns {
		parsed, err := Parse(f.String())
		if err != nil || parsed != f {
			t.Errorf("Parse(String(%v)) = %v, %v", f, parsed, err)
		}
	}
	if _, err := Parse("NOPE"); err == nil {
		t.Fatal("Parse of unknown name should fail")
	}
	if Func(99).String() != "Func(99)" {
		t.Fatal("out-of-range String")
	}
	if len(Basic()) != 5 {
		t.Fatal("Basic should have 5 funcs")
	}
}

func TestSimpleAggregates(t *testing.T) {
	v := []float64{4, 1, 3, 2}
	if got := apply(t, Sum, v); got != 10 {
		t.Errorf("SUM = %v", got)
	}
	if got := apply(t, Min, v); got != 1 {
		t.Errorf("MIN = %v", got)
	}
	if got := apply(t, Max, v); got != 4 {
		t.Errorf("MAX = %v", got)
	}
	if got := apply(t, Avg, v); got != 2.5 {
		t.Errorf("AVG = %v", got)
	}
	if got := apply(t, Median, v); got != 2.5 {
		t.Errorf("MEDIAN = %v", got)
	}
	if got := apply(t, Median, []float64{5, 1, 3}); got != 3 {
		t.Errorf("odd MEDIAN = %v", got)
	}
}

func TestCountUsesGroupSizeIncludingNulls(t *testing.T) {
	got, ok := Count.Apply([]float64{1, 2}, 5)
	if !ok || got != 5 {
		t.Fatalf("COUNT = %v, want 5 (group size incl. nulls)", got)
	}
	// COUNT of an empty group is 0, not NULL.
	got, ok = Count.Apply(nil, 0)
	if !ok || got != 0 {
		t.Fatalf("COUNT(empty) = %v,%v", got, ok)
	}
}

func TestCountDistinct(t *testing.T) {
	got, ok := CountDistinct.Apply([]float64{1, 1, 2, 3, 3, 3}, 6)
	if !ok || got != 3 {
		t.Fatalf("COUNT_DISTINCT = %v", got)
	}
	got, ok = CountDistinct.Apply(nil, 0)
	if !ok || got != 0 {
		t.Fatal("COUNT_DISTINCT(empty) should be 0, defined")
	}
}

func TestVarianceFamily(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9} // classic example: pop var 4
	if got := apply(t, Var, v); !almost(got, 4) {
		t.Errorf("VAR = %v", got)
	}
	if got := apply(t, Std, v); !almost(got, 2) {
		t.Errorf("STD = %v", got)
	}
	if got := apply(t, VarSample, v); !almost(got, 4*8.0/7.0) {
		t.Errorf("VAR_SAMPLE = %v", got)
	}
	if got := apply(t, StdSample, v); !almost(got, math.Sqrt(4*8.0/7.0)) {
		t.Errorf("STD_SAMPLE = %v", got)
	}
	if _, ok := VarSample.Apply([]float64{1}, 1); ok {
		t.Error("sample variance of one value should be undefined")
	}
	if _, ok := StdSample.Apply([]float64{1}, 1); ok {
		t.Error("sample std of one value should be undefined")
	}
}

func TestEntropy(t *testing.T) {
	// Uniform over 2 values → ln 2.
	if got := apply(t, Entropy, []float64{1, 2}); !almost(got, math.Ln2) {
		t.Errorf("ENTROPY = %v, want ln2", got)
	}
	// Constant → 0.
	if got := apply(t, Entropy, []float64{5, 5, 5}); !almost(got, 0) {
		t.Errorf("ENTROPY const = %v", got)
	}
}

func TestKurtosis(t *testing.T) {
	// Symmetric two-point distribution has excess kurtosis -2.
	if got := apply(t, Kurtosis, []float64{1, 1, -1, -1}); !almost(got, -2) {
		t.Errorf("KURTOSIS = %v, want -2", got)
	}
	if _, ok := Kurtosis.Apply([]float64{1, 2, 3}, 3); ok {
		t.Error("kurtosis of <4 values should be undefined")
	}
	if _, ok := Kurtosis.Apply([]float64{2, 2, 2, 2}, 4); ok {
		t.Error("kurtosis of constant should be undefined")
	}
}

func TestModeDeterministicTieBreak(t *testing.T) {
	if got := apply(t, Mode, []float64{3, 1, 3, 1}); got != 1 {
		t.Errorf("MODE tie = %v, want smaller value 1", got)
	}
	if got := apply(t, Mode, []float64{2, 2, 9}); got != 2 {
		t.Errorf("MODE = %v", got)
	}
}

func TestMAD(t *testing.T) {
	// median=3, abs dev = [2,1,0,1,2] → MAD=1
	if got := apply(t, MAD, []float64{1, 2, 3, 4, 5}); got != 1 {
		t.Errorf("MAD = %v", got)
	}
}

func TestEmptyInputUndefined(t *testing.T) {
	for _, f := range []Func{Sum, Min, Max, Avg, Var, Std, Entropy, Kurtosis, Mode, MAD, Median} {
		if _, ok := f.Apply(nil, 3); ok {
			t.Errorf("%s(empty) should be undefined", f)
		}
	}
	if _, ok := Func(99).Apply([]float64{1}, 1); ok {
		t.Error("unknown func should be undefined")
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	v := []float64{3, 1, 2}
	apply(t, Median, v)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatal("MEDIAN mutated its input")
	}
}

func TestStringApply(t *testing.T) {
	vals := []string{"a", "b", "a", "a"}
	if got, ok := Count.StringApply(vals, 5); !ok || got != 5 {
		t.Errorf("COUNT strings = %v,%v", got, ok)
	}
	if got, ok := CountDistinct.StringApply(vals, 4); !ok || got != 2 {
		t.Errorf("COUNT_DISTINCT strings = %v", got)
	}
	if got, ok := Mode.StringApply(vals, 4); !ok || got != 3 {
		t.Errorf("MODE strings = %v (frequency of modal value)", got)
	}
	if got, ok := Entropy.StringApply([]string{"x", "y"}, 2); !ok || !almost(got, math.Ln2) {
		t.Errorf("ENTROPY strings = %v", got)
	}
	if _, ok := Sum.StringApply(vals, 4); ok {
		t.Error("SUM on strings should be unsupported")
	}
	if _, ok := Entropy.StringApply(nil, 0); ok {
		t.Error("ENTROPY on empty strings should be undefined")
	}
	if _, ok := Mode.StringApply(nil, 0); ok {
		t.Error("MODE on empty strings should be undefined")
	}
}

func TestStringModeTieBreak(t *testing.T) {
	// Tie between "a" (2) and "b" (2) — both have frequency 2 so the numeric
	// image is 2 either way, but exercise the tie-break path.
	if got, ok := Mode.StringApply([]string{"b", "a", "b", "a"}, 4); !ok || got != 2 {
		t.Errorf("MODE string tie = %v", got)
	}
}

func TestSupportsStrings(t *testing.T) {
	for _, f := range []Func{Count, CountDistinct, Entropy, Mode} {
		if !f.SupportsStrings() {
			t.Errorf("%s should support strings", f)
		}
	}
	for _, f := range []Func{Sum, Avg, Median, Kurtosis} {
		if f.SupportsStrings() {
			t.Errorf("%s should not support strings", f)
		}
	}
}

// Property: MIN <= AVG <= MAX and MIN <= MEDIAN <= MAX for any non-empty
// input.
func TestPropertyOrderStatistics(t *testing.T) {
	f := func(raw []float64) bool {
		var v []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				v = append(v, x)
			}
		}
		if len(v) == 0 {
			return true
		}
		lo, _ := Min.Apply(v, len(v))
		hi, _ := Max.Apply(v, len(v))
		avg, _ := Avg.Apply(v, len(v))
		med, _ := Median.Apply(v, len(v))
		const eps = 1e-6
		return lo-eps <= avg && avg <= hi+eps && lo-eps <= med && med <= hi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: VAR >= 0 and STD^2 == VAR.
func TestPropertyVarianceNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		var v []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				v = append(v, x)
			}
		}
		if len(v) == 0 {
			return true
		}
		va, _ := Var.Apply(v, len(v))
		st, _ := Std.Apply(v, len(v))
		return va >= 0 && math.Abs(st*st-va) <= 1e-6*(1+va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ENTROPY is maximised by all-distinct inputs (= ln n) and is
// always within [0, ln n].
func TestPropertyEntropyBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			v[i] = float64(x)
		}
		h, _ := Entropy.Apply(v, len(v))
		return h >= -1e-12 && h <= math.Log(float64(len(v)))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
