package relschema

import (
	"testing"

	"repro/internal/dataframe"
)

// instacartLike builds the paper's Instacart shape: users (training) →
// orders (1:N) → products (N:1) → departments (N:1).
func instacartLike(t *testing.T) *Schema {
	t.Helper()
	users := dataframe.MustNewTable(
		dataframe.NewIntColumn("user_id", []int64{1, 2}, nil),
		dataframe.NewIntColumn("label", []int64{1, 0}, nil),
	)
	orders := dataframe.MustNewTable(
		dataframe.NewIntColumn("uid", []int64{1, 1, 2}, nil),
		dataframe.NewIntColumn("product_id", []int64{10, 11, 10}, nil),
		dataframe.NewFloatColumn("qty", []float64{2, 1, 5}, nil),
	)
	products := dataframe.MustNewTable(
		dataframe.NewIntColumn("product_id", []int64{10, 11}, nil),
		dataframe.NewStringColumn("pname", []string{"banana", "milk"}, nil),
		dataframe.NewIntColumn("dept_id", []int64{100, 101}, nil),
	)
	departments := dataframe.MustNewTable(
		dataframe.NewIntColumn("dept_id", []int64{100, 101}, nil),
		dataframe.NewStringColumn("dname", []string{"produce", "dairy"}, nil),
	)
	s := NewSchema()
	for name, tbl := range map[string]*dataframe.Table{
		"users": users, "orders": orders, "products": products, "departments": departments,
	} {
		if err := s.AddTable(name, tbl); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd := func(r Relationship) {
		t.Helper()
		if err := s.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(Relationship{From: "users", To: "orders", FromKeys: []string{"user_id"}, ToKeys: []string{"uid"}, Card: OneToMany})
	mustAdd(Relationship{From: "orders", To: "products", FromKeys: []string{"product_id"}, ToKeys: []string{"product_id"}, Card: ManyToOne})
	mustAdd(Relationship{From: "products", To: "departments", FromKeys: []string{"dept_id"}, ToKeys: []string{"dept_id"}, Card: ManyToOne})
	return s
}

func TestSchemaRegistration(t *testing.T) {
	s := NewSchema()
	tbl := dataframe.MustNewTable(dataframe.NewIntColumn("a", []int64{1}, nil))
	if err := s.AddTable("t", tbl); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable("t", tbl); err == nil {
		t.Error("duplicate name should fail")
	}
	if err := s.AddTable("", tbl); err == nil {
		t.Error("empty name should fail")
	}
	if err := s.AddTable("nil", nil); err == nil {
		t.Error("nil table should fail")
	}
	if s.Table("t") == nil || s.Table("ghost") != nil {
		t.Error("Table lookup broken")
	}
	if len(s.TableNames()) != 1 {
		t.Error("TableNames wrong")
	}
}

func TestAddRelationshipValidation(t *testing.T) {
	s := instacartLike(t)
	cases := []Relationship{
		{From: "ghost", To: "orders", FromKeys: []string{"x"}, ToKeys: []string{"x"}},
		{From: "users", To: "ghost", FromKeys: []string{"x"}, ToKeys: []string{"x"}},
		{From: "users", To: "orders", FromKeys: nil, ToKeys: nil},
		{From: "users", To: "orders", FromKeys: []string{"a", "b"}, ToKeys: []string{"c"}},
		{From: "users", To: "orders", FromKeys: []string{"ghost"}, ToKeys: []string{"uid"}},
		{From: "users", To: "orders", FromKeys: []string{"user_id"}, ToKeys: []string{"ghost"}},
	}
	for i, r := range cases {
		if err := s.AddRelationship(r); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if len(s.Relationships()) != 3 {
		t.Errorf("edges = %d", len(s.Relationships()))
	}
}

func TestCardinalityString(t *testing.T) {
	if OneToMany.String() != "1:N" || ManyToOne.String() != "N:1" || OneToOne.String() != "1:1" {
		t.Error("cardinality names wrong")
	}
	if Cardinality(9).String() != "Cardinality(9)" {
		t.Error("unknown cardinality name wrong")
	}
}

func TestFlattenDeepLayer(t *testing.T) {
	s := instacartLike(t)
	rels, err := s.Flatten("users")
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 {
		t.Fatalf("relevant tables = %d, want 1", len(rels))
	}
	r := rels[0]
	if r.Name != "orders" {
		t.Fatalf("name = %s", r.Name)
	}
	// The flattened table must carry the dimension columns two hops away.
	for _, col := range []string{"qty", "pname", "dname"} {
		if !r.Table.HasColumn(col) {
			t.Fatalf("flattened table missing %q; has %v", col, r.Table.ColumnNames())
		}
	}
	// Keys renamed to the training table's column name.
	if len(r.Keys) != 1 || r.Keys[0] != "user_id" {
		t.Fatalf("keys = %v", r.Keys)
	}
	if !r.Table.HasColumn("user_id") {
		t.Fatal("flattened table missing renamed key")
	}
	// Row multiplicity preserved: 3 order rows.
	if r.Table.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", r.Table.NumRows())
	}
	// Department of the banana order resolved through the chain.
	dn := r.Table.Column("dname")
	uid := r.Table.Column("user_id")
	found := false
	for i := 0; i < r.Table.NumRows(); i++ {
		if uid.Int(i) == 2 && dn.Str(i) == "produce" {
			found = true
		}
	}
	if !found {
		t.Fatal("deep-layer join lost the user2→banana→produce path")
	}
}

func TestFlattenDeeperOneToManyChain(t *testing.T) {
	// users → sessions (1:N) → events (1:N): the deep 1:N chain must flatten
	// into one relevant table at event granularity with session columns.
	users := dataframe.MustNewTable(dataframe.NewIntColumn("user_id", []int64{1}, nil))
	sessions := dataframe.MustNewTable(
		dataframe.NewIntColumn("session_id", []int64{5, 6}, nil),
		dataframe.NewIntColumn("user_id", []int64{1, 1}, nil),
		dataframe.NewStringColumn("device", []string{"phone", "laptop"}, nil),
	)
	events := dataframe.MustNewTable(
		dataframe.NewIntColumn("session_id", []int64{5, 5, 6}, nil),
		dataframe.NewFloatColumn("dur", []float64{1, 2, 3}, nil),
	)
	s := NewSchema()
	for name, tbl := range map[string]*dataframe.Table{"users": users, "sessions": sessions, "events": events} {
		if err := s.AddTable(name, tbl); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddRelationship(Relationship{From: "users", To: "sessions", FromKeys: []string{"user_id"}, ToKeys: []string{"user_id"}, Card: OneToMany}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRelationship(Relationship{From: "sessions", To: "events", FromKeys: []string{"session_id"}, ToKeys: []string{"session_id"}, Card: OneToMany}); err != nil {
		t.Fatal(err)
	}
	rels, err := s.Flatten("users")
	if err != nil {
		t.Fatal(err)
	}
	r := rels[0]
	if r.Table.NumRows() != 3 {
		t.Fatalf("rows = %d, want event granularity 3", r.Table.NumRows())
	}
	if !r.Table.HasColumn("device") || !r.Table.HasColumn("dur") {
		t.Fatalf("columns = %v", r.Table.ColumnNames())
	}
}

func TestFlattenErrors(t *testing.T) {
	s := instacartLike(t)
	if _, err := s.Flatten("ghost"); err == nil {
		t.Error("unknown root should fail")
	}
	if _, err := s.Flatten("departments"); err == nil {
		t.Error("leaf table has no 1:N children")
	}
}

func TestFlattenDetectsCycles(t *testing.T) {
	a := dataframe.MustNewTable(dataframe.NewIntColumn("k", []int64{1}, nil))
	b := dataframe.MustNewTable(dataframe.NewIntColumn("k", []int64{1}, nil))
	s := NewSchema()
	if err := s.AddTable("a", a); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable("b", b); err != nil {
		t.Fatal(err)
	}
	for _, r := range []Relationship{
		{From: "a", To: "b", FromKeys: []string{"k"}, ToKeys: []string{"k"}, Card: OneToMany},
		{From: "b", To: "a", FromKeys: []string{"k"}, ToKeys: []string{"k"}, Card: ManyToOne},
		{From: "a", To: "b", FromKeys: []string{"k"}, ToKeys: []string{"k"}, Card: ManyToOne},
	} {
		if err := s.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Flatten("a"); err == nil {
		t.Fatal("cycle should be detected")
	}
}

func TestDecomposeManyToMany(t *testing.T) {
	bridge := dataframe.MustNewTable(
		dataframe.NewIntColumn("user_id", []int64{1, 1, 2}, nil),
		dataframe.NewIntColumn("group_id", []int64{10, 11, 10}, nil),
	)
	groups := dataframe.MustNewTable(
		dataframe.NewIntColumn("gid", []int64{10, 11}, nil),
		dataframe.NewStringColumn("gname", []string{"sports", "music"}, nil),
	)
	flat, err := DecomposeManyToMany(bridge, groups, []string{"group_id"}, []string{"gid"})
	if err != nil {
		t.Fatal(err)
	}
	if flat.NumRows() != 3 || !flat.HasColumn("gname") {
		t.Fatalf("decomposed table wrong: %v rows, cols %v", flat.NumRows(), flat.ColumnNames())
	}
}
