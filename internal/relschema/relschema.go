// Package relschema models multi-table relational schemas and reduces them
// to the one-training-table / one-relevant-table scenario FeatAug operates
// on, following Section III of the paper:
//
//   - Deep-layer relationships (D → R1 → R2 → ...) are flattened by joining
//     the chain into one relevant table ("it can be represented by the
//     aforementioned scenario by joining all the tables into one relevant
//     table").
//   - Many-to-one side tables (dimension tables) are joined directly into
//     the fact table they describe.
//   - Many-to-many relationships decompose into a many-to-one join followed
//     by the remaining one-to-many edge.
//   - Multiple relevant tables become multiple one-to-many scenarios
//     ("it can be represented by multiple scenarios with one base table and
//     one relevant table").
package relschema

import (
	"fmt"

	"repro/internal/dataframe"
)

// Cardinality describes the direction of a relationship edge from parent to
// child.
type Cardinality int

// Relationship cardinalities.
const (
	// OneToMany: one parent row matches many child rows (training table →
	// log table). The child is a relevant table for the parent.
	OneToMany Cardinality = iota
	// ManyToOne: many child rows reference one parent row (log table →
	// dimension table). The parent's columns can be joined straight into
	// the child.
	ManyToOne
	// OneToOne: a direct extension table.
	OneToOne
)

// String names the cardinality.
func (c Cardinality) String() string {
	switch c {
	case OneToMany:
		return "1:N"
	case ManyToOne:
		return "N:1"
	case OneToOne:
		return "1:1"
	}
	return fmt.Sprintf("Cardinality(%d)", int(c))
}

// Relationship is one foreign-key edge between two named tables.
type Relationship struct {
	// From and To are table names registered in the schema.
	From, To string
	// FromKeys/ToKeys are the equi-join columns (positional pairing).
	FromKeys, ToKeys []string
	// Card is the cardinality of the edge read From → To.
	Card Cardinality
}

// Schema is a set of named tables plus relationship edges.
type Schema struct {
	tables map[string]*dataframe.Table
	order  []string
	edges  []Relationship
}

// NewSchema builds an empty schema.
func NewSchema() *Schema {
	return &Schema{tables: map[string]*dataframe.Table{}}
}

// AddTable registers a table under a unique name.
func (s *Schema) AddTable(name string, t *dataframe.Table) error {
	if name == "" {
		return fmt.Errorf("relschema: empty table name")
	}
	if t == nil {
		return fmt.Errorf("relschema: nil table %q", name)
	}
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("relschema: duplicate table %q", name)
	}
	s.tables[name] = t
	s.order = append(s.order, name)
	return nil
}

// Table returns a registered table or nil.
func (s *Schema) Table(name string) *dataframe.Table { return s.tables[name] }

// TableNames returns registration order.
func (s *Schema) TableNames() []string { return append([]string(nil), s.order...) }

// AddRelationship registers an edge after validating both endpoints.
func (s *Schema) AddRelationship(r Relationship) error {
	from, ok := s.tables[r.From]
	if !ok {
		return fmt.Errorf("relschema: unknown table %q", r.From)
	}
	to, ok := s.tables[r.To]
	if !ok {
		return fmt.Errorf("relschema: unknown table %q", r.To)
	}
	if len(r.FromKeys) == 0 || len(r.FromKeys) != len(r.ToKeys) {
		return fmt.Errorf("relschema: bad key lists for %s→%s", r.From, r.To)
	}
	for i := range r.FromKeys {
		if !from.HasColumn(r.FromKeys[i]) {
			return fmt.Errorf("relschema: %s has no column %q", r.From, r.FromKeys[i])
		}
		if !to.HasColumn(r.ToKeys[i]) {
			return fmt.Errorf("relschema: %s has no column %q", r.To, r.ToKeys[i])
		}
	}
	s.edges = append(s.edges, r)
	return nil
}

// Relationships returns the registered edges.
func (s *Schema) Relationships() []Relationship { return append([]Relationship(nil), s.edges...) }

// childrenOf returns the one-to-many edges out of a table.
func (s *Schema) childrenOf(name string) []Relationship {
	var out []Relationship
	for _, e := range s.edges {
		if e.From == name && e.Card == OneToMany {
			out = append(out, e)
		}
	}
	return out
}

// dimensionEdges returns the many-to-one / one-to-one edges out of a table
// (the tables whose columns can be folded into it).
func (s *Schema) dimensionEdges(name string) []Relationship {
	var out []Relationship
	for _, e := range s.edges {
		if e.From == name && (e.Card == ManyToOne || e.Card == OneToOne) {
			out = append(out, e)
		}
	}
	return out
}

// RelevantTable is one flattened one-to-many scenario rooted at the training
// table: the relevant table plus the foreign key joining it back to the
// training table.
type RelevantTable struct {
	// Name identifies the scenario (the child chain, e.g. "orders>products").
	Name string
	// Table is the flattened relevant table.
	Table *dataframe.Table
	// Keys are the foreign-key columns (named as they appear in both the
	// training table and the flattened relevant table).
	Keys []string
}

// Flatten reduces the schema to one-to-many scenarios for a training table:
// every 1:N child of root becomes one relevant table, with (a) its own N:1 /
// 1:1 dimension tables folded in by direct joins and (b) deeper 1:N
// descendants flattened recursively into the same table (the deep-layer
// join). The result is what FeatAug's Problem.Relevant expects.
func (s *Schema) Flatten(root string) ([]RelevantTable, error) {
	rootTbl, ok := s.tables[root]
	if !ok {
		return nil, fmt.Errorf("relschema: unknown root table %q", root)
	}
	_ = rootTbl
	var out []RelevantTable
	for _, edge := range s.childrenOf(root) {
		flat, err := s.flattenChain(edge.To, map[string]bool{root: true})
		if err != nil {
			return nil, err
		}
		// The relevant table joins back to the training table on the child's
		// key columns; rename them to the root's names when they differ so
		// Problem.Keys reads uniformly.
		for i := range edge.ToKeys {
			if edge.ToKeys[i] != edge.FromKeys[i] {
				col := flat.Column(edge.ToKeys[i])
				if col == nil {
					return nil, fmt.Errorf("relschema: flattened %q lost key %q", edge.To, edge.ToKeys[i])
				}
				renamed := col.Rename(edge.FromKeys[i])
				flat.DropColumn(edge.ToKeys[i])
				if err := flat.AddColumn(renamed); err != nil {
					return nil, err
				}
			}
		}
		out = append(out, RelevantTable{
			Name:  edge.To,
			Table: flat,
			Keys:  append([]string(nil), edge.FromKeys...),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("relschema: table %q has no one-to-many children", root)
	}
	return out, nil
}

// flattenChain folds a table's dimension tables and deep 1:N descendants
// into a single table.
func (s *Schema) flattenChain(name string, visited map[string]bool) (*dataframe.Table, error) {
	if visited[name] {
		return nil, fmt.Errorf("relschema: cycle through table %q", name)
	}
	visited[name] = true
	defer delete(visited, name)

	cur := s.tables[name].Clone()
	// Fold dimension tables (N:1 / 1:1): join their columns in directly.
	for _, e := range s.dimensionEdges(name) {
		dim, err := s.flattenChain(e.To, visited)
		if err != nil {
			return nil, err
		}
		cur, err = cur.LeftJoin(dim, e.FromKeys, e.ToKeys)
		if err != nil {
			return nil, fmt.Errorf("relschema: fold %s into %s: %w", e.To, name, err)
		}
	}
	// Deep-layer 1:N descendants: the paper joins the chain into one
	// relevant table, which multiplies rows — implemented as a left join
	// from the child side back onto this table so every child row appears
	// once with its ancestor columns attached.
	for _, e := range s.childrenOf(name) {
		child, err := s.flattenChain(e.To, visited)
		if err != nil {
			return nil, err
		}
		joined, err := child.LeftJoin(cur, e.ToKeys, e.FromKeys)
		if err != nil {
			return nil, fmt.Errorf("relschema: flatten %s under %s: %w", e.To, name, err)
		}
		cur = joined
	}
	return cur, nil
}

// DecomposeManyToMany splits a many-to-many relationship realised by a
// bridge table into the two scenarios the paper describes: the bridge joined
// with the far side (N:1) becomes a single one-to-many relevant table for
// the near side.
func DecomposeManyToMany(bridge, far *dataframe.Table, bridgeFarKeys, farKeys []string) (*dataframe.Table, error) {
	return bridge.LeftJoin(far, bridgeFarKeys, farKeys)
}
