package repro

// Extra ablation benches beyond the paper's own tables, covering the design
// choices DESIGN.md flags: the TPE good/bad quantile γ, the beam width β of
// query template identification, TPE vs random search inside query
// generation, and micro-benchmarks of the hot substrate paths (query
// execution, group-by, TPE suggestion).

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/datagen"
	"repro/internal/feataug"
	"repro/internal/hpo"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/query"
)

func benchProblem(b *testing.B) pipeline.Problem {
	b.Helper()
	d := datagen.Tmall(datagen.Options{TrainRows: 250, LogsPerKey: 6, Seed: 17})
	return pipeline.Problem{
		Train: d.Train, Relevant: d.Relevant, Label: d.Label, Task: d.Task,
		Keys: d.Keys, AggAttrs: d.AggAttrs, PredAttrs: d.PredAttrs[:3],
		BaseFeatures: d.BaseFeatures,
	}
}

func benchEngineConfig() feataug.Config {
	return feataug.Config{
		Seed: 17, WarmupIters: 12, WarmupTopK: 4, GenIters: 4,
		NumTemplates: 2, QueriesPerTemplate: 2, MaxDepth: 2,
		TemplateProxyIters: 6,
	}
}

// BenchmarkAblationGamma sweeps the TPE good/bad quantile γ and reports the
// best validation loss found at γ=0.15 (the paper's cited typical value).
func BenchmarkAblationGamma(b *testing.B) {
	p := benchProblem(b)
	var loss float64
	for i := 0; i < b.N; i++ {
		for _, gamma := range []float64{0.05, 0.15, 0.35} {
			ev, err := pipeline.NewEvaluator(p, ml.KindLR, 17)
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchEngineConfig()
			cfg.TPE = hpo.TPEOptions{Gamma: gamma}
			cfg.DisableQTI = true
			engine := feataug.NewEngine(ev, agg.Basic(), cfg)
			res, err := engine.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if gamma == 0.15 {
				loss = res.Queries[0].Loss
			}
		}
	}
	b.ReportMetric(loss, "best_loss_gamma_0.15")
}

// BenchmarkAblationBeamWidth sweeps β of the QTI beam search.
func BenchmarkAblationBeamWidth(b *testing.B) {
	p := benchProblem(b)
	for i := 0; i < b.N; i++ {
		for _, beam := range []int{1, 2, 3} {
			ev, err := pipeline.NewEvaluator(p, ml.KindLR, 17)
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchEngineConfig()
			cfg.BeamWidth = beam
			engine := feataug.NewEngine(ev, agg.Basic(), cfg)
			if _, err := engine.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationTPEvsRandom compares the best real loss TPE finds against
// uniform random search under an equal evaluation budget (the paper's
// Random row in Table III), averaged over five seeds, and reports the mean
// loss difference (negative = TPE better). A single seed is dominated by
// best-of-n luck; the paper averages repetitions for the same reason.
func BenchmarkAblationTPEvsRandom(b *testing.B) {
	p := benchProblem(b)
	var diff float64
	for i := 0; i < b.N; i++ {
		ev, err := pipeline.NewEvaluator(p, ml.KindLR, 17)
		if err != nil {
			b.Fatal(err)
		}
		tpl := query.Template{
			Funcs: agg.Basic(), AggAttrs: p.AggAttrs,
			PredAttrs: []string{"action", "timestamp"}, Keys: p.Keys,
		}
		space, err := query.BuildSpace(p.Relevant, tpl, query.SpaceOptions{})
		if err != nil {
			b.Fatal(err)
		}
		objective := func(x []int) float64 {
			q, err := space.Decode(x)
			if err != nil {
				return 1e9
			}
			loss, err := ev.QueryLoss(q)
			if err != nil {
				return 1e9
			}
			return loss
		}
		const iters = 60
		const seeds = 5
		sum := 0.0
		for s := int64(0); s < seeds; s++ {
			tpe := hpo.NewTPE(space.Cardinalities(), rand.New(rand.NewSource(100+s)), hpo.TPEOptions{})
			bestT, _ := hpo.Run(tpe, iters, objective)
			rs := hpo.NewRandomSearch(space.Cardinalities(), rand.New(rand.NewSource(100+s)))
			bestR, _ := hpo.Run(rs, iters, objective)
			sum += bestT.Loss - bestR.Loss
		}
		diff = sum / seeds
	}
	b.ReportMetric(diff, "tpe_minus_random_loss")
}

// BenchmarkQueryExecution measures the executor on a realistic
// predicate-aware query.
func BenchmarkQueryExecution(b *testing.B) {
	p := benchProblem(b)
	q := query.Query{
		Agg: agg.Avg, AggAttr: "price", Keys: p.Keys,
		Preds: []query.Predicate{
			{Attr: "action", Kind: query.PredEq, StrValue: "buy"},
			{Attr: "timestamp", Kind: query.PredRange, HasLo: true, Lo: 5000},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Execute(p.Relevant, "f"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupByAggregate measures the dataframe group-by path.
func BenchmarkGroupByAggregate(b *testing.B) {
	p := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := p.Relevant.GroupBy(p.Keys...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.Aggregate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTPESuggest measures one TPE suggestion over a 100-observation
// history on a realistic query space.
func BenchmarkTPESuggest(b *testing.B) {
	p := benchProblem(b)
	tpl := query.Template{
		Funcs: agg.All(), AggAttrs: p.AggAttrs,
		PredAttrs: p.PredAttrs, Keys: p.Keys,
	}
	space, err := query.BuildSpace(p.Relevant, tpl, query.SpaceOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	tpe := hpo.NewTPE(space.Cardinalities(), rng, hpo.TPEOptions{})
	for i := 0; i < 100; i++ {
		x := space.RandomVector(rng.Intn)
		tpe.Observe(hpo.Observation{X: x, Loss: rng.Float64()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tpe.Suggest()
	}
}

// BenchmarkModelFit measures one downstream model fit per kind on the
// evaluation protocol's training split size.
func BenchmarkModelFit(b *testing.B) {
	p := benchProblem(b)
	ds, err := ml.FromTable(p.Train, p.BaseFeatures, p.Label)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range ml.AllKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := ml.New(kind, ml.Binary, 17)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Fit(ds.X, ds.Y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
